// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver: two-watched-literal propagation, first-UIP conflict analysis,
// VSIDS-style branching activities, phase saving, and Luby restarts.
//
// The solver is the execution substrate for the paper's decision procedures:
// every decidability result reduces to finite satisfiability of a
// Bernays–Schönfinkel sentence, which package fol grounds into CNF and
// solves here. Variables are positive integers; literals are non-zero
// integers with negation by sign, as in DIMACS.
package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means solving was aborted (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// ErrBadLiteral is returned when a clause mentions literal 0 or an
// undeclared variable.
var ErrBadLiteral = errors.New("sat: literal must be a non-zero declared variable")

type clause struct {
	lits    []int
	learnt  bool
	act     float64
	deleted bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	nVars   int
	clauses []*clause
	learnts []*clause

	// watches[idx(l)] lists clauses watching literal l (their lits[0] or
	// lits[1] equals l).
	watches [][]*clause

	assign   []int8 // 1 true, -1 false, 0 unassigned; indexed by var
	level    []int  // decision level per var
	reason   []*clause
	phase    []int8 // saved phase per var
	trail    []int
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	claInc   float64

	order []int // lazily sorted variable ordering scratch

	propagations uint64
	conflicts    uint64
	decisions    uint64

	// interrupt, when non-nil, is polled periodically during search; a true
	// return aborts the current Solve call with Unknown.
	interrupt func() bool

	model []int8
}

// New creates an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1}
	s.watches = make([][]*clause, 2)
	s.assign = make([]int8, 1)
	s.level = make([]int, 1)
	s.reason = make([]*clause, 1)
	s.phase = make([]int8, 1)
	s.activity = make([]float64, 1)
	return s
}

// NewVar allocates a fresh variable and returns its index (≥ 1).
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, -1)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	return s.nVars
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return s.nVars }

// NumClauses returns the number of problem clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// Stats returns (propagations, conflicts, decisions) counters.
func (s *Solver) Stats() (uint64, uint64, uint64) {
	return s.propagations, s.conflicts, s.decisions
}

// SetInterrupt installs a callback polled periodically inside the search
// loop; when it returns true the in-flight Solve call stops and returns
// Unknown. The callback must be cheap (it is invoked every few hundred
// search steps) and safe to call from the solving goroutine. Passing nil
// removes the hook.
func (s *Solver) SetInterrupt(f func() bool) { s.interrupt = f }

// interruptEvery is the number of search-loop iterations between interrupt
// polls: frequent enough for sub-millisecond cancellation latency, rare
// enough to stay invisible in profiles.
const interruptEvery = 512

func idx(l int) int {
	if l > 0 {
		return 2 * l
	}
	return -2*l + 1
}

func (s *Solver) valueLit(l int) int8 {
	v := l
	if v < 0 {
		v = -v
	}
	a := s.assign[v]
	if l < 0 {
		return -a
	}
	return a
}

// AddClause adds a problem clause. Duplicate literals are removed and
// tautological clauses are dropped. Adding an empty clause (or a clause
// whose literals are all already false at level 0) makes the instance
// trivially unsatisfiable. It must be called before Solve.
func (s *Solver) AddClause(lits ...int) error {
	seen := make(map[int]bool, len(lits))
	var cl []int
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		if l == 0 || v > s.nVars {
			return fmt.Errorf("%w: %d (have %d vars)", ErrBadLiteral, l, s.nVars)
		}
		if seen[-l] {
			return nil // tautology
		}
		if seen[l] {
			continue
		}
		seen[l] = true
		cl = append(cl, l)
	}
	c := &clause{lits: cl}
	s.clauses = append(s.clauses, c)
	if len(cl) >= 2 {
		s.watch(c)
	}
	return nil
}

func (s *Solver) watch(c *clause) {
	s.watches[idx(c.lits[0])] = append(s.watches[idx(c.lits[0])], c)
	s.watches[idx(c.lits[1])] = append(s.watches[idx(c.lits[1])], c)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) enqueue(l int, from *clause) bool {
	switch s.valueLit(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l
	sign := int8(1)
	if v < 0 {
		v = -v
		sign = -1
	}
	s.assign[v] = sign
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		notP := -p
		ws := s.watches[idx(notP)]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if c.deleted {
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == notP {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If lits[0] is true, clause is satisfied.
			if s.valueLit(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[idx(c.lits[1])] = append(s.watches[idx(c.lits[1])], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watchers and return.
				kept = append(kept, ws[i+1:]...)
				s.watches[idx(notP)] = kept
				return c
			}
		}
		s.watches[idx(notP)] = kept
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := 1; i <= s.nVars; i++ {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]int, int) {
	learnt := []int{0} // slot for asserting literal
	seen := make(map[int]bool)
	counter := 0
	p := 0
	trailIdx := len(s.trail) - 1
	c := confl
	for {
		start := 0
		if p != 0 {
			start = 1
		}
		for k := start; k < len(c.lits); k++ {
			q := c.lits[k]
			v := q
			if v < 0 {
				v = -v
			}
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find next literal to expand on the trail.
		for {
			p = s.trail[trailIdx]
			trailIdx--
			v := p
			if v < 0 {
				v = -v
			}
			if seen[v] {
				c = s.reason[v]
				seen[v] = false
				counter--
				break
			}
		}
		if counter == 0 {
			break
		}
		// p's reason is expanded next; asserting literal is ¬p ultimately.
		if c == nil {
			// Decision variable reached with counter>0 cannot happen in
			// 1UIP analysis; guard defensively.
			break
		}
	}
	learnt[0] = -p
	// Compute backjump level: max level among learnt[1:].
	bl := 0
	for _, q := range learnt[1:] {
		v := q
		if v < 0 {
			v = -v
		}
		if s.level[v] > bl {
			bl = s.level[v]
		}
	}
	// Move a literal of backjump level to position 1 for watching.
	for i := 1; i < len(learnt); i++ {
		v := learnt[i]
		if v < 0 {
			v = -v
		}
		if s.level[v] == bl {
			learnt[1], learnt[i] = learnt[i], learnt[1]
			break
		}
	}
	return learnt, bl
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	limit := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l
		ph := int8(1)
		if v < 0 {
			v = -v
			ph = -1
		}
		s.phase[v] = ph
		s.assign[v] = 0
		s.reason[v] = nil
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = limit
}

// pickBranchVar selects the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v] == 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int) int {
	// Find the subsequence containing i.
	for k := 1; ; k++ {
		if i == (1<<k)-1 {
			return 1 << (k - 1)
		}
		if i < (1<<k)-1 {
			return luby(i - (1 << (k - 1)) + 1)
		}
	}
}

// Solve searches for a satisfying assignment. The optional assumptions are
// literals fixed at decision level 1. maxConflicts < 0 means no budget.
func (s *Solver) Solve(assumptions ...int) Status {
	return s.SolveBudget(-1, assumptions...)
}

// SolveBudget is Solve with a conflict budget; it returns Unknown when the
// budget is exhausted.
func (s *Solver) SolveBudget(maxConflicts int64, assumptions ...int) Status {
	s.cancelUntil(0)
	// Attach unit clauses at level 0.
	for _, c := range s.clauses {
		switch len(c.lits) {
		case 0:
			return Unsat
		case 1:
			if !s.enqueue(c.lits[0], nil) {
				return Unsat
			}
		}
	}
	if s.propagate() != nil {
		return Unsat
	}
	restart := 1
	budget := int64(100) * int64(luby(restart))
	var spent int64
	var steps uint
	for {
		steps++
		if steps%interruptEvery == 0 && s.interrupt != nil && s.interrupt() {
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			spent++
			if s.decisionLevel() == 0 {
				return Unsat
			}
			learnt, bl := s.analyze(confl)
			s.cancelUntil(bl)
			c := &clause{lits: learnt, learnt: true}
			s.learnts = append(s.learnts, c)
			if len(learnt) >= 2 {
				s.watch(c)
			}
			if !s.enqueue(learnt[0], c) {
				return Unsat
			}
			s.varInc /= 0.95
			if maxConflicts >= 0 && int64(s.conflicts) > maxConflicts {
				return Unknown
			}
			if spent > budget {
				// Restart.
				restart++
				budget = int64(100) * int64(luby(restart))
				spent = 0
				s.cancelUntil(0)
			}
			continue
		}
		// No conflict: decide.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case -1:
				return Unsat
			case 1:
				// Already satisfied; open an empty decision level so the
				// index keeps advancing.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, nil)
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			// All variables assigned: model found.
			s.model = append([]int8(nil), s.assign...)
			return Sat
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := v
		if s.phase[v] == -1 {
			l = -v
		}
		s.enqueue(l, nil)
	}
}

// Value returns the model value of variable v after a Sat result.
func (s *Solver) Value(v int) bool {
	if s.model == nil || v <= 0 || v >= len(s.model) {
		return false
	}
	return s.model[v] == 1
}

// Model returns the satisfying assignment as a sorted list of true variable
// indices; it is only meaningful after Solve returned Sat.
func (s *Solver) Model() []int {
	var out []int
	for v := 1; v < len(s.model); v++ {
		if s.model[v] == 1 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}
