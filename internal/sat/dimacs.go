package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format and returns a solver
// loaded with it. The "p cnf" header is optional; variables are allocated as
// needed.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var pending []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: bad DIMACS header %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("sat: bad variable count %q", fields[2])
			}
			for s.NumVars() < n {
				s.NewVar()
			}
			continue
		}
		for _, f := range strings.Fields(line) {
			l, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", f)
			}
			if l == 0 {
				if err := s.AddClause(pending...); err != nil {
					return nil, err
				}
				pending = pending[:0]
				continue
			}
			v := l
			if v < 0 {
				v = -v
			}
			for s.NumVars() < v {
				s.NewVar()
			}
			pending = append(pending, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pending) > 0 {
		if err := s.AddClause(pending...); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WriteDIMACS serializes the solver's problem clauses in DIMACS format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", s.nVars, len(s.clauses)); err != nil {
		return err
	}
	for _, c := range s.clauses {
		var b strings.Builder
		for _, l := range c.lits {
			fmt.Fprintf(&b, "%d ", l)
		}
		b.WriteString("0\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
