package core

import (
	"fmt"
	"strings"

	"repro/internal/dlog"
	"repro/internal/relation"
)

// ParseProgram parses a transducer program in the paper's concrete syntax:
//
//	transducer short
//	schema
//	  database: price/2, available/1;
//	  input: order/1, pay/2;
//	  state: past-order/1, past-pay/2;
//	  output: sendbill/2, deliver/1;
//	  log: sendbill, pay, deliver;
//	state rules
//	  past-order(X) +:- order(X);
//	  past-pay(X,Y) +:- pay(X,Y);
//	output rules
//	  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
//	  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
//
// Arity suffixes ("/2") are optional: unannotated declarations take their
// arity from the first use in a rule. The headers "schema" and "relations"
// are interchangeable, as in the paper's two examples. The kind of machine
// constructed is chosen by the state rules: exactly the implicit past-R
// cumulation rules yield a Spocus machine; additional positive cumulative
// rules yield an extended machine; anything else yields a general machine.
func ParseProgram(src string) (*Machine, error) {
	p := &progParser{lex: dlog.NewLexer(src)}
	return p.parse()
}

// MustParseProgram parses a transducer program and panics on error; intended
// for the statically-known programs in internal/models and tests.
func MustParseProgram(src string) *Machine {
	m, err := ParseProgram(src)
	if err != nil {
		panic(fmt.Sprintf("core: parse transducer: %v", err))
	}
	return m
}

type progParser struct {
	lex  *dlog.Lexer
	name string

	decls map[string]*sectionDecl // section keyword -> declarations
	log   []string

	stateRules  dlog.Program
	outputRules dlog.Program
}

type sectionDecl struct {
	names   []string
	arities map[string]int // -1 if unannotated
}

func (p *progParser) parse() (*Machine, error) {
	l := p.lex
	p.decls = map[string]*sectionDecl{}
	if l.AcceptKeyword("transducer") {
		t, err := l.Expect(dlog.TokIdent)
		if err != nil {
			return nil, err
		}
		p.name = t.Text
		// Allow a version marker such as "0" on the same line (the paper
		// prints a superscript after the name); skip a stray identifier that
		// is immediately followed by a section keyword.
	}
	// Optional "schema" / "relations" header.
	if !l.AcceptKeyword("schema") {
		l.AcceptKeyword("relations")
	}
	// Sections: declaration lists ("input: ...;") and rule sections
	// ("state rules", "output rules"), in any order.
sections:
	for {
		tok := l.Tok()
		if tok.Kind != dlog.TokIdent {
			break
		}
		kw := strings.ToLower(tok.Text)
		switch kw {
		case "database", "db", "input", "state", "output", "log":
			l.Next()
			if l.Accept(dlog.TokColon) {
				if err := p.parseDeclList(kw); err != nil {
					return nil, err
				}
				continue
			}
			if (kw == "state" || kw == "output") && l.AcceptKeyword("rules") {
				rules, err := p.parseRules()
				if err != nil {
					return nil, err
				}
				if kw == "state" {
					p.stateRules = append(p.stateRules, rules...)
				} else {
					p.outputRules = append(p.outputRules, rules...)
				}
				continue
			}
			return nil, l.Errorf("expected ':' or 'rules' after %q", kw)
		default:
			break sections
		}
	}
	if l.Tok().Kind != dlog.TokEOF {
		return nil, l.Errorf("unexpected %s %q", l.Tok().Kind, l.Tok().Text)
	}
	if err := l.Err(); err != nil {
		return nil, err
	}
	return p.build()
}

func (p *progParser) parseDeclList(section string) error {
	l := p.lex
	d := p.decls[section]
	if d == nil {
		d = &sectionDecl{arities: map[string]int{}}
		p.decls[section] = d
	}
	for {
		t, err := l.Expect(dlog.TokIdent)
		if err != nil {
			return err
		}
		name := t.Text
		arity := -1
		if l.Accept(dlog.TokSlash) {
			at, err := l.Expect(dlog.TokIdent)
			if err != nil {
				return err
			}
			if _, err := fmt.Sscanf(at.Text, "%d", &arity); err != nil || arity < 0 {
				return l.Errorf("bad arity %q for %s", at.Text, name)
			}
		}
		if prev, ok := d.arities[name]; ok {
			if prev != arity {
				return l.Errorf("relation %s declared twice with different arities", name)
			}
		} else {
			d.names = append(d.names, name)
			d.arities[name] = arity
		}
		if l.Accept(dlog.TokComma) {
			continue
		}
		if l.Accept(dlog.TokSemi) || l.Tok().Kind == dlog.TokEOF {
			return nil
		}
		return l.Errorf("expected ',' or ';' in %s declaration, found %q", section, l.Tok().Text)
	}
}

func (p *progParser) parseRules() (dlog.Program, error) {
	l := p.lex
	var rules dlog.Program
	for {
		t := l.Tok()
		if t.Kind == dlog.TokEOF {
			return rules, nil
		}
		// Stop at the start of another rule section.
		if t.Kind == dlog.TokIdent && (strings.EqualFold(t.Text, "state") || strings.EqualFold(t.Text, "output")) {
			// Lookahead: a rule head could legitimately be a relation named
			// "state"... the schema reserves these as section keywords, so
			// treat them as section starts.
			return rules, nil
		}
		r, err := dlog.ParseRuleFrom(l)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
}

func (p *progParser) build() (*Machine, error) {
	// Resolve arities: first from annotations, then from rule usage.
	use := map[string]int{}
	record := func(pred string, arity int, where string) error {
		if prev, ok := use[pred]; ok && prev != arity {
			return fmt.Errorf("relation %s used with arities %d and %d (%s)", pred, prev, arity, where)
		}
		use[pred] = arity
		return nil
	}
	for _, prog := range []dlog.Program{p.stateRules, p.outputRules} {
		for _, r := range prog {
			if err := record(r.Head.Pred, len(r.Head.Args), r.String()); err != nil {
				return nil, err
			}
			for _, lit := range r.Body {
				if lit.Kind == dlog.LitPos || lit.Kind == dlog.LitNeg {
					if err := record(lit.Atom.Pred, len(lit.Atom.Args), r.String()); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	mkSchema := func(section string) (relation.Schema, error) {
		d := p.decls[section]
		if d == nil {
			return nil, nil
		}
		var out relation.Schema
		for _, name := range d.names {
			arity := d.arities[name]
			if arity == -1 {
				if a, ok := use[name]; ok {
					arity = a
				} else {
					return nil, fmt.Errorf("cannot infer arity of %s relation %s: never used in a rule (annotate as %s(k))", section, name, name)
				}
			}
			if a, ok := use[name]; ok && a != arity {
				return nil, fmt.Errorf("%s relation %s declared with arity %d but used with arity %d", section, name, arity, a)
			}
			out = append(out, relation.Decl{Name: name, Arity: arity})
		}
		return out, nil
	}
	db, err := mkSchema("database")
	if err != nil {
		return nil, err
	}
	if extra, err2 := mkSchema("db"); err2 != nil {
		return nil, err2
	} else if extra != nil {
		db = append(db, extra...)
	}
	in, err := mkSchema("input")
	if err != nil {
		return nil, err
	}
	st, err := mkSchema("state")
	if err != nil {
		return nil, err
	}
	out, err := mkSchema("output")
	if err != nil {
		return nil, err
	}
	var logNames []string
	if d := p.decls["log"]; d != nil {
		logNames = d.names
	}
	schema := &Schema{In: in, State: st, Out: out, DB: db, Log: logNames}

	m, err := p.classify(schema)
	if err != nil {
		return nil, err
	}
	m.name = p.name
	return m, nil
}

// classify picks the most restricted machine kind the rules admit.
func (p *progParser) classify(schema *Schema) (*Machine, error) {
	var extra dlog.Program
	spocusOnly := true
	for _, r := range p.stateRules {
		if isImplicitPastRule(r, schema.In) {
			continue
		}
		extra = append(extra, r)
		if !r.Cumulative || hasNegation(r) {
			spocusOnly = false
		}
	}
	if len(extra) == 0 {
		s := schema
		if subsetOfImplicitPasts(schema) {
			// The paper's programs sometimes omit past-R declarations for
			// inputs whose history is never consulted (friendly declares no
			// past-pending-bills); the Spocus definition mandates the full
			// set, so complete it.
			s = schema.Clone()
			s.State = nil
		}
		if m, err := NewSpocus(s, p.outputRules); err == nil {
			return m, nil
		} else if schemaIsSpocus(s) {
			// The schema matches Spocus, so the error is a genuine rule
			// violation worth surfacing rather than silently generalizing.
			return nil, err
		}
	}
	if spocusOnly {
		if m, err := NewExtended(schema, extra, p.outputRules); err == nil {
			return m, nil
		}
	}
	return NewGeneral(schema, p.stateRules, p.outputRules)
}

// subsetOfImplicitPasts reports whether every declared state relation is
// past-R for some input relation R with matching arity.
func subsetOfImplicitPasts(s *Schema) bool {
	for _, d := range s.State {
		base := strings.TrimPrefix(d.Name, PastPrefix)
		if base == d.Name {
			return false
		}
		if a, ok := s.In.Arity(base); !ok || a != d.Arity {
			return false
		}
	}
	return true
}

// schemaIsSpocus reports whether the declared state schema is exactly
// {past-R | R ∈ in}.
func schemaIsSpocus(s *Schema) bool {
	if s.State == nil {
		return true
	}
	if len(s.State) != len(s.In) {
		return false
	}
	for _, d := range s.In {
		if a, ok := s.State.Arity(Past(d.Name)); !ok || a != d.Arity {
			return false
		}
	}
	return true
}

// isImplicitPastRule recognizes "past-R(X̄) +:- R(X̄)" with distinct
// variables, the implicit Spocus cumulation rule.
func isImplicitPastRule(r dlog.Rule, in relation.Schema) bool {
	if !r.Cumulative || len(r.Body) != 1 || r.Body[0].Kind != dlog.LitPos {
		return false
	}
	body := r.Body[0].Atom
	if r.Head.Pred != Past(body.Pred) || !in.Has(body.Pred) {
		return false
	}
	if len(r.Head.Args) != len(body.Args) {
		return false
	}
	seen := map[string]bool{}
	for i := range body.Args {
		h, b := r.Head.Args[i], body.Args[i]
		if !h.Var || !b.Var || h.Name != b.Name || seen[h.Name] {
			return false
		}
		seen[h.Name] = true
	}
	return true
}

func hasNegation(r dlog.Rule) bool {
	for _, l := range r.Body {
		if l.Kind == dlog.LitNeg {
			return true
		}
	}
	return false
}
