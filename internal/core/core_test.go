package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dlog"
	"repro/internal/relation"
)

const shortSrc = `
transducer short
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
`

func magazineDB() relation.Instance {
	db := relation.NewInstance()
	db.Add("price", relation.Tuple{"time", "855"})
	db.Add("price", relation.Tuple{"newsweek", "845"})
	db.Add("price", relation.Tuple{"le-monde", "8350"})
	db.Add("available", relation.Tuple{"time"})
	db.Add("available", relation.Tuple{"newsweek"})
	db.Add("available", relation.Tuple{"le-monde"})
	return db
}

func step(facts ...string) relation.Instance {
	in := relation.NewInstance()
	for _, f := range facts {
		name := f
		var args relation.Tuple
		if i := strings.IndexByte(f, '('); i >= 0 {
			name = f[:i]
			for _, part := range strings.Split(strings.TrimSuffix(f[i+1:], ")"), ",") {
				args = append(args, relation.Const(strings.TrimSpace(part)))
			}
		}
		in.Add(name, args)
	}
	return in
}

func TestParseShortIsSpocus(t *testing.T) {
	m := MustParseProgram(shortSrc)
	if m.Kind() != KindSpocus {
		t.Fatalf("kind = %v, want spocus", m.Kind())
	}
	if m.Name() != "short" {
		t.Errorf("name = %q", m.Name())
	}
	if got := len(m.Schema().In); got != 2 {
		t.Errorf("inputs = %d, want 2", got)
	}
	if m.Schema().FullLog() {
		t.Error("short has a partial log, not full")
	}
	if a, ok := m.Schema().Arity("past-pay"); !ok || a != 2 {
		t.Errorf("past-pay arity = %d,%v", a, ok)
	}
}

func TestShortRunMatchesPaperSemantics(t *testing.T) {
	m := MustParseProgram(shortSrc)
	run, err := m.Execute(magazineDB(), relation.Sequence{
		step("order(time)", "order(newsweek)"),
		step("pay(time,855)"),
		step("pay(newsweek,845)", "pay(newsweek,845)"),
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// Step 1: bills for both ordered magazines, nothing delivered.
	o1 := run.Outputs[0]
	if !o1.Has("sendbill", relation.Tuple{"time", "855"}) || !o1.Has("sendbill", relation.Tuple{"newsweek", "845"}) {
		t.Errorf("step1 bills wrong: %s", o1)
	}
	if o1.Rel("deliver").Len() != 0 {
		t.Errorf("step1 delivered too early: %s", o1)
	}
	// Step 2: payment for time delivers time (past-order holds, past-pay not yet).
	o2 := run.Outputs[1]
	if !o2.Has("deliver", relation.Tuple{"time"}) {
		t.Errorf("step2 should deliver time: %s", o2)
	}
	// Step 3: newsweek delivered.
	if !run.Outputs[2].Has("deliver", relation.Tuple{"newsweek"}) {
		t.Errorf("step3 should deliver newsweek: %s", run.Outputs[2])
	}
	// State cumulates.
	if !run.States[2].Has("past-pay", relation.Tuple{"time", "855"}) {
		t.Errorf("state lost past payment: %s", run.States[2])
	}
	// Log contains only logged relations.
	if run.Logs[1].Rel("order") != nil {
		t.Error("unlogged input leaked into log")
	}
	if !run.Logs[1].Has("pay", relation.Tuple{"time", "855"}) || !run.Logs[1].Has("deliver", relation.Tuple{"time"}) {
		t.Errorf("log step2 wrong: %s", run.Logs[1])
	}
}

func TestOutputSeesPreviousState(t *testing.T) {
	// Paying in the same step as ordering must NOT deliver: deliver needs
	// past-order, which only reflects earlier steps.
	m := MustParseProgram(shortSrc)
	run, err := m.Execute(magazineDB(), relation.Sequence{
		step("order(time)", "pay(time,855)"),
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if run.Outputs[0].Rel("deliver").Len() != 0 {
		t.Errorf("delivery must not happen in the ordering step: %s", run.Outputs[0])
	}
}

func TestRepaymentDoesNotRedeliver(t *testing.T) {
	m := MustParseProgram(shortSrc)
	run, err := m.Execute(magazineDB(), relation.Sequence{
		step("order(time)"),
		step("pay(time,855)"),
		step("pay(time,855)"), // duplicate payment
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if run.Outputs[2].Rel("deliver").Len() != 0 {
		t.Errorf("past-pay must suppress redelivery: %s", run.Outputs[2])
	}
}

func TestSchemaValidate(t *testing.T) {
	s := &Schema{
		In:  relation.Schema{{Name: "a", Arity: 1}},
		Out: relation.Schema{{Name: "a", Arity: 1}},
	}
	if err := s.Validate(); err == nil {
		t.Error("overlapping in/out accepted")
	}
	s2 := &Schema{
		In:  relation.Schema{{Name: "a", Arity: 1}},
		Out: relation.Schema{{Name: "b", Arity: 1}},
		Log: []string{"c"},
	}
	if err := s2.Validate(); err == nil {
		t.Error("log over undeclared relation accepted")
	}
	s3 := &Schema{
		In:  relation.Schema{{Name: "a", Arity: 1}, {Name: "a", Arity: 2}},
		Out: relation.Schema{{Name: "b", Arity: 1}},
	}
	if err := s3.Validate(); err == nil {
		t.Error("duplicate input declaration accepted")
	}
}

func TestNewSpocusRejectsBadPrograms(t *testing.T) {
	schema := &Schema{
		In:  relation.Schema{{Name: "r", Arity: 1}},
		Out: relation.Schema{{Name: "o", Arity: 1}},
		Log: []string{"o"},
	}
	cases := []struct {
		name  string
		rules string
	}{
		{"output in body", "o(X) :- r(X); o(X) :- o(X);"},
		{"unsafe", "o(X) :- NOT r(X);"},
		{"undeclared head", "bad(X) :- r(X);"},
		{"cumulative output", "o(X) +:- r(X);"},
		{"head arity", "o(X,Y) :- r(X), r(Y);"},
		{"body arity", "o(X) :- r(X,X);"},
	}
	for _, c := range cases {
		rules, err := dlog.ParseProgram(c.rules)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if _, err := NewSpocus(schema, rules); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestNewSpocusRejectsWrongStateSchema(t *testing.T) {
	schema := &Schema{
		In:    relation.Schema{{Name: "r", Arity: 1}},
		State: relation.Schema{{Name: "mystate", Arity: 1}},
		Out:   relation.Schema{{Name: "o", Arity: 1}},
	}
	if _, err := NewSpocus(schema, nil); err == nil {
		t.Error("non past-R state schema accepted by NewSpocus")
	}
}

func TestExtendedProjectionStateRules(t *testing.T) {
	// The Prop 3.1 extension: R2(Y) +:- R(X,Y) stores a projection.
	src := `
transducer projdemo
schema
  input: r/2;
  state: past-r/2, r2/1;
  output: violg;
  log: violg;
state rules
  past-r(X,Y) +:- r(X,Y);
  r2(Y) +:- r(X,Y);
output rules
  violg :- past-r(X,Y), NOT r2(X);
`
	m := MustParseProgram(src)
	if m.Kind() != KindExtended {
		t.Fatalf("kind = %v, want extended", m.Kind())
	}
	run, err := m.Execute(relation.NewInstance(), relation.Sequence{
		step("r(a,b)"),
		step(),
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// After step 1, past-r={(a,b)}, r2={b}; step 2 sees NOT r2(a) → violg.
	if run.Outputs[0].Rel("violg").Len() != 0 {
		t.Error("violg derived too early (state is previous-step)")
	}
	if run.Outputs[1].Rel("violg").Len() == 0 {
		t.Errorf("violg not derived: %s", run.Outputs[1])
	}
}

func TestGeneralMachineNonCumulativeState(t *testing.T) {
	src := `
transducer flipflop
schema
  input: tick/0;
  state: on/0;
  output: lit/0;
  log: lit;
state rules
  on :- tick, NOT on;
output rules
  lit :- on;
`
	m := MustParseProgram(src)
	if m.Kind() != KindGeneral {
		t.Fatalf("kind = %v, want general", m.Kind())
	}
	run, err := m.Execute(relation.NewInstance(), relation.Sequence{
		step("tick"), step("tick"), step("tick"),
	})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	// State alternates: off→on→off→on; output lit reflects previous state
	// being off (so lit at steps 2 is off... check actual values).
	wantOn := []bool{true, false, true}
	for i, w := range wantOn {
		got := run.States[i].Rel("on").Len() > 0
		if got != w {
			t.Errorf("step %d: on=%v, want %v", i+1, got, w)
		}
	}
}

func TestExecuteRejectsBadInputs(t *testing.T) {
	m := MustParseProgram(shortSrc)
	if _, err := m.Execute(magazineDB(), relation.Sequence{step("deliver(x)")}); err == nil {
		t.Error("output relation accepted as input")
	}
	bad := relation.NewInstance()
	bad.Add("order", relation.Tuple{"a", "b"})
	if _, err := m.Execute(magazineDB(), relation.Sequence{bad}); err == nil {
		t.Error("wrong-arity input accepted")
	}
}

func TestAcceptModes(t *testing.T) {
	src := `
transducer acc
schema
  input: a/0, b/0;
  output: error/0, ok/0, accept/0;
  log: error, ok, accept;
state rules
  past-a +:- a;
  past-b +:- b;
output rules
  error :- b, NOT past-a;
  ok :- a;
  ok :- past-a;
  accept :- b;
`
	m := MustParseProgram(src)
	if m.Kind() != KindSpocus {
		t.Fatalf("kind = %v", m.Kind())
	}
	good, err := m.Execute(relation.NewInstance(), relation.Sequence{step("a"), step("b")})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if !good.Valid(ErrorFree) || !good.Valid(OKEveryStep) || !good.Valid(AcceptAtEnd) || !good.Valid(AcceptAll) {
		t.Errorf("good run rejected: ef=%v ok=%v acc=%v", good.Valid(ErrorFree), good.Valid(OKEveryStep), good.Valid(AcceptAtEnd))
	}
	bad, err := m.Execute(relation.NewInstance(), relation.Sequence{step("b")})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if bad.Valid(ErrorFree) {
		t.Error("b before a should raise error")
	}
	if bad.Valid(OKEveryStep) {
		t.Error("ok missing at step 1")
	}
	if !bad.Valid(AcceptAtEnd) {
		t.Error("accept fires on b regardless")
	}
	if bad.ErrorFreePrefix() != 0 {
		t.Errorf("ErrorFreePrefix = %d, want 0", bad.ErrorFreePrefix())
	}
}

func TestMachineStringRoundTrip(t *testing.T) {
	m := MustParseProgram(shortSrc)
	m2, err := ParseProgram(m.String())
	if err != nil {
		t.Fatalf("reparse: %v\nprogram:\n%s", err, m.String())
	}
	if m2.Kind() != m.Kind() {
		t.Errorf("kind changed: %v vs %v", m2.Kind(), m.Kind())
	}
	if m2.String() != m.String() {
		t.Errorf("string not stable:\n%s\nvs\n%s", m.String(), m2.String())
	}
}

func TestArityInference(t *testing.T) {
	src := `
transducer infer
schema
  input: order, pay;
  output: deliver;
  log: deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  deliver(X) :- past-order(X), pay(X,Y);
`
	m := MustParseProgram(src)
	if a, _ := m.Schema().In.Arity("pay"); a != 2 {
		t.Errorf("pay arity inferred as %d, want 2", a)
	}
	if a, _ := m.Schema().In.Arity("order"); a != 1 {
		t.Errorf("order arity inferred as %d, want 1", a)
	}
}

func TestArityConflictRejected(t *testing.T) {
	src := `
transducer conflict
schema
  input: r/1;
  output: o/1;
  log: o;
state rules
  past-r(X) +:- r(X);
output rules
  o(X) :- r(X, Y);
`
	if _, err := ParseProgram(src); err == nil {
		t.Error("arity conflict accepted")
	}
}

func TestParseProgramErrors(t *testing.T) {
	cases := []string{
		"transducer", // missing name
		"transducer t\nschema\n input: r/x;",
		"transducer t\nschema\n input r/1;",  // missing colon
		"transducer t\nstate rules\np(X) :-", // dangling
		"transducer t\nschema\ninput: r/1, r/2;",
		"transducer t\nschema\nlog: ghost;\noutput rules\n",
	}
	for _, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) succeeded, want error", src)
		}
	}
}

// TestPropStateCumulative checks Sᵢ ⊆ Sᵢ₊₁ on random input sequences of the
// short transducer — the inflationary-state property underpinning the
// paper's propositional characterization (§3.1).
func TestPropStateCumulative(t *testing.T) {
	m := MustParseProgram(shortSrc)
	db := magazineDB()
	mags := []string{"time", "newsweek", "le-monde"}
	prices := []string{"855", "845", "8350"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var seq relation.Sequence
		n := 1 + r.Intn(5)
		for i := 0; i < n; i++ {
			in := relation.NewInstance()
			for k := 0; k < r.Intn(3); k++ {
				if r.Intn(2) == 0 {
					in.Add("order", relation.Tuple{relation.Const(mags[r.Intn(3)])})
				} else {
					j := r.Intn(3)
					in.Add("pay", relation.Tuple{relation.Const(mags[j]), relation.Const(prices[r.Intn(3)])})
				}
			}
			seq = append(seq, in)
		}
		run, err := m.Execute(db, seq)
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(run.States); i++ {
			if !run.States[i].SubsetOf(run.States[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropOutputLocality checks the key lemma of Theorem 3.2: the last
// output of a run on I₁..Iₙ equals the last output on the two-step sequence
// (∪_{i<n} Iᵢ), Iₙ.
func TestPropOutputLocality(t *testing.T) {
	m := MustParseProgram(shortSrc)
	db := magazineDB()
	mags := []string{"time", "newsweek", "le-monde"}
	prices := []string{"855", "845", "8350"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var seq relation.Sequence
		n := 2 + r.Intn(4)
		for i := 0; i < n; i++ {
			in := relation.NewInstance()
			for k := 0; k < r.Intn(3); k++ {
				if r.Intn(2) == 0 {
					in.Add("order", relation.Tuple{relation.Const(mags[r.Intn(3)])})
				} else {
					in.Add("pay", relation.Tuple{relation.Const(mags[r.Intn(3)]), relation.Const(prices[r.Intn(3)])})
				}
			}
			seq = append(seq, in)
		}
		full, err := m.Execute(db, seq)
		if err != nil {
			return false
		}
		union := relation.NewInstance()
		for i := 0; i+1 < len(seq); i++ {
			union.UnionWith(seq[i])
		}
		short, err := m.Execute(db, relation.Sequence{union, seq[n-1]})
		if err != nil {
			return false
		}
		return full.LastOutput().Equal(short.LastOutput())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
