package core

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a stable content hash identifying the machine: its
// restriction class, name, schema (including the log declaration), and both
// rule programs, hashed over the canonical program rendering of String.
//
// The verify package tags every memoized solver subproblem with the
// fingerprint of the machine(s) that produced it, so a process-wide cache
// shared across models (the live verification service) can never conflate
// two machines — even ones sharing rule text but differing in name, schema,
// or log declaration. Two calls on machines built from the same source
// return the same fingerprint, so sessions of one registry model share
// cache entries.
func (m *Machine) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte(m.kind.String()))
	h.Write([]byte{0})
	h.Write([]byte(m.String()))
	return hex.EncodeToString(h.Sum(nil)[:16])
}
