package core

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestParseStepEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want StepEngine
		err  bool
	}{
		{"", EngineRA, false},
		{"ra", EngineRA, false},
		{"tree", EngineTree, false},
		{"turbo", EngineRA, true},
	} {
		got, err := ParseStepEngine(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseStepEngine(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

func TestStepEnginesAgreeOnShort(t *testing.T) {
	db := magazineDB()
	inputs := relation.Sequence{step("order(time)"), step("pay(time, 855)")}

	prev := SetStepEngine(EngineTree)
	defer SetStepEngine(prev)
	treeRun, err := MustParseProgram(shortSrc).Execute(db, inputs)
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	SetStepEngine(EngineRA)
	raRun, err := MustParseProgram(shortSrc).Execute(db, inputs)
	if err != nil {
		t.Fatalf("ra: %v", err)
	}
	if !treeRun.Outputs.Equal(raRun.Outputs) {
		t.Fatalf("outputs differ\ntree: %v\nra:   %v", treeRun.Outputs, raRun.Outputs)
	}
	if !treeRun.States.Equal(raRun.States) {
		t.Fatalf("states differ\ntree: %v\nra:   %v", treeRun.States, raRun.States)
	}
	if !treeRun.Logs.Equal(raRun.Logs) {
		t.Fatal("logs differ")
	}
}

func TestPlanCacheSharedByFingerprint(t *testing.T) {
	m1 := MustParseProgram(shortSrc)
	m2 := MustParseProgram(shortSrc)
	p1, err := m1.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p2, err := m2.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if p1 != p2 {
		t.Fatal("two machines with the same fingerprint got distinct plans")
	}
	if p1.output.Interner() != p1.state.Interner() {
		t.Fatal("output and state plans do not share the machine's intern table")
	}
}

func TestExplainPlanRendersBothPrograms(t *testing.T) {
	m := MustParseProgram(shortSrc)
	got, err := m.ExplainPlan()
	if err != nil {
		t.Fatalf("ExplainPlan: %v", err)
	}
	for _, want := range []string{"output plan:", "state plan", "sendbill", "past-order", "scan"} {
		if !strings.Contains(got, want) {
			t.Fatalf("ExplainPlan missing %q:\n%s", want, got)
		}
	}
}
