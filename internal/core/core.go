// Package core implements the paper's primary contribution: relational
// transducers — machines mapping sequences of input relations to sequences
// of output relations over a fixed database — and the restricted Spocus
// class (Semi-POsitive outputs, CUmulative State) for which the paper's
// decision procedures apply.
//
// A transducer is specified by a transducer schema (input, state, output,
// database, and log relations), a state program, and an output program, both
// written in the datalog dialect of package dlog. Runs, logs, and the three
// acceptance disciplines of Section 4 (error-free, ok-every-step,
// accept-at-end) are provided here; the decision procedures live in package
// verify.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/dlog"
	"repro/internal/ra"
	"repro/internal/relation"
)

// Distinguished output relation names used by the acceptance mechanisms of
// Section 4 of the paper.
const (
	// ErrorRel is the distinguished relation of error-free runs: a run is
	// valid iff no output ever contains an error fact.
	ErrorRel = "error"
	// OKRel is the distinguished relation of ok-validated runs: a run is
	// valid iff every output contains the ok fact.
	OKRel = "ok"
	// AcceptRel is the distinguished relation of accept-validated runs: a
	// finite run is valid iff its last output contains the accept fact.
	AcceptRel = "accept"
)

// PastPrefix is the naming convention linking an input relation R to its
// cumulative state relation past-R.
const PastPrefix = "past-"

// Past returns the state relation name for input relation name.
func Past(input string) string { return PastPrefix + input }

// Schema is a transducer schema (in, state, out, db, log): five relation
// schemas where the first four are pairwise disjoint and the log is a subset
// of in ∪ out.
type Schema struct {
	In    relation.Schema
	State relation.Schema
	Out   relation.Schema
	DB    relation.Schema
	// Log lists the names of the logged relations (each declared in In or
	// Out). If Log covers all of In and Out the log is full.
	Log []string
}

// Validate checks the well-formedness conditions of Definition 2.2.
func (s *Schema) Validate() error {
	parts := []struct {
		name string
		sch  relation.Schema
	}{{"input", s.In}, {"state", s.State}, {"output", s.Out}, {"database", s.DB}}
	for i := range parts {
		seen := make(map[string]bool)
		for _, d := range parts[i].sch {
			if seen[d.Name] {
				return fmt.Errorf("schema: duplicate %s relation %s", parts[i].name, d.Name)
			}
			seen[d.Name] = true
		}
		for j := i + 1; j < len(parts); j++ {
			if !parts[i].sch.Disjoint(parts[j].sch) {
				return fmt.Errorf("schema: %s and %s relations are not disjoint", parts[i].name, parts[j].name)
			}
		}
	}
	for _, n := range s.Log {
		if !s.In.Has(n) && !s.Out.Has(n) {
			return fmt.Errorf("schema: log relation %s is not an input or output relation", n)
		}
	}
	return nil
}

// FullLog reports whether the log contains every input and output relation.
func (s *Schema) FullLog() bool {
	logged := make(map[string]bool, len(s.Log))
	for _, n := range s.Log {
		logged[n] = true
	}
	for _, d := range s.In {
		if !logged[d.Name] {
			return false
		}
	}
	for _, d := range s.Out {
		if !logged[d.Name] {
			return false
		}
	}
	return true
}

// LogSchema returns the relation schema of the logged relations.
func (s *Schema) LogSchema() relation.Schema {
	all, _ := s.In.Union(s.Out)
	return all.Restrict(s.Log)
}

// LogDelta computes the logged part of one step's exchange: the restriction
// of the input and output instances to the log relations, combined into a
// fresh instance. This is the per-step increment of the run's log sequence
// (Definition 2.2) and the durable object the session engine persists.
func (s *Schema) LogDelta(input, output relation.Instance) relation.Instance {
	combined := relation.NewInstance()
	for _, n := range s.Log {
		ir, iok := input[n]
		or, ook := output[n]
		switch {
		case iok && ook:
			r := ir.Clone()
			r.UnionWith(or)
			combined[n] = r
		case ook:
			// The output instance is freshly built by this step and treated
			// as an immutable value, so the delta can share its relation.
			combined[n] = or
		case iok:
			// Inputs are caller-owned; copy before retaining.
			combined[n] = ir.Clone()
		}
	}
	return combined
}

// Logged reports whether the named relation is in the log.
func (s *Schema) Logged(name string) bool {
	for _, n := range s.Log {
		if n == name {
			return true
		}
	}
	return false
}

// Arity resolves the arity of a relation in any of the five components.
func (s *Schema) Arity(name string) (int, bool) {
	for _, sch := range []relation.Schema{s.In, s.State, s.Out, s.DB} {
		if a, ok := sch.Arity(name); ok {
			return a, true
		}
	}
	return 0, false
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{
		In:    append(relation.Schema(nil), s.In...),
		State: append(relation.Schema(nil), s.State...),
		Out:   append(relation.Schema(nil), s.Out...),
		DB:    append(relation.Schema(nil), s.DB...),
		Log:   append([]string(nil), s.Log...),
	}
	return c
}

func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "database: %s;\n", s.DB)
	fmt.Fprintf(&b, "input: %s;\n", s.In)
	fmt.Fprintf(&b, "state: %s;\n", s.State)
	fmt.Fprintf(&b, "output: %s;\n", s.Out)
	fmt.Fprintf(&b, "log: %s;", strings.Join(s.Log, ", "))
	return b.String()
}

// Kind classifies how restricted a machine is.
type Kind int

const (
	// KindSpocus is the paper's Spocus class: state relations past-R
	// cumulate inputs verbatim, outputs are nonrecursive semipositive
	// datalog with inequality over in ∪ state ∪ db.
	KindSpocus Kind = iota
	// KindExtended relaxes Spocus by allowing additional cumulative state
	// rules with positive bodies (in particular projections), the extension
	// shown undecidable in Proposition 3.1.
	KindExtended
	// KindGeneral places no restriction beyond safety and stratifiability of
	// the state and output programs.
	KindGeneral
)

func (k Kind) String() string {
	switch k {
	case KindSpocus:
		return "spocus"
	case KindExtended:
		return "extended"
	case KindGeneral:
		return "general"
	}
	return "unknown"
}

// Machine is a rule-specified relational transducer. Use NewSpocus,
// NewExtended, or NewGeneral to construct one; the constructor validates the
// restrictions of the corresponding class.
type Machine struct {
	name        string
	kind        Kind
	schema      *Schema
	stateRules  dlog.Program
	outputRules dlog.Program
	// plans is the machine's lazily compiled relational-algebra form (see
	// engine.go); resolved through the fingerprint-keyed plan cache.
	plans atomic.Pointer[machinePlans]
	// cumulative caches the state-rule heads with cumulative semantics,
	// computed once at construction so the per-step merge never rebuilds it.
	cumulative map[string]bool
	// raCache memoizes interned EDB relations across this machine's steps:
	// the fixed database interns once per machine, and state relations
	// shared across steps by the copy-on-write merge hit it too.
	raCache atomic.Pointer[ra.Cache]
}

// stepCache returns the machine's interned-relation cache, creating it on
// first use (atomically, so concurrent steppers share one).
func (m *Machine) stepCache() *ra.Cache {
	if c := m.raCache.Load(); c != nil {
		return c
	}
	c := ra.NewCache()
	if m.raCache.CompareAndSwap(nil, c) {
		return c
	}
	return m.raCache.Load()
}

// cumulativeHeads returns the set of cumulative state-rule heads.
func cumulativeHeads(p dlog.Program) map[string]bool {
	out := make(map[string]bool)
	for _, r := range p {
		if r.Cumulative {
			out[r.Head.Pred] = true
		}
	}
	return out
}

// Name returns the machine's (possibly empty) name.
func (m *Machine) Name() string { return m.name }

// SetName sets the machine's display name and returns the machine.
func (m *Machine) SetName(name string) *Machine { m.name = name; return m }

// Kind returns the machine's restriction class.
func (m *Machine) Kind() Kind { return m.kind }

// Schema returns the transducer schema. Callers must not mutate it.
func (m *Machine) Schema() *Schema { return m.schema }

// StateRules returns the state program (for Spocus machines these are the
// generated past-R cumulation rules). Callers must not mutate the result.
func (m *Machine) StateRules() dlog.Program { return m.stateRules }

// OutputRules returns the output program. Callers must not mutate it.
func (m *Machine) OutputRules() dlog.Program { return m.outputRules }

// ErrorRules returns the output rules whose head is the distinguished error
// relation.
func (m *Machine) ErrorRules() dlog.Program { return m.outputRules.RulesFor(ErrorRel) }

// pastStateSchema derives the Spocus state schema {past-R | R ∈ in}.
func pastStateSchema(in relation.Schema) relation.Schema {
	out := make(relation.Schema, len(in))
	for i, d := range in {
		out[i] = relation.Decl{Name: Past(d.Name), Arity: d.Arity}
	}
	return out
}

// pastStateRules derives the cumulative rules past-R(x̄) +:- R(x̄).
func pastStateRules(in relation.Schema) dlog.Program {
	var p dlog.Program
	for _, d := range in {
		args := make([]dlog.Term, d.Arity)
		for i := range args {
			args[i] = dlog.V(fmt.Sprintf("X%d", i+1))
		}
		p = append(p, dlog.Rule{
			Head:       dlog.NewAtom(Past(d.Name), args...),
			Body:       []dlog.Literal{dlog.Pos(dlog.NewAtom(d.Name, args...))},
			Cumulative: true,
		})
	}
	return p
}

// NewSpocus constructs a Spocus transducer. The schema's State component may
// be nil, in which case it is derived as {past-R | R ∈ in}; if supplied it
// must equal exactly that set. The output rules must be safe, nonrecursive,
// and semipositive over in ∪ state ∪ db with heads among the output
// relations; inequality literals are permitted.
func NewSpocus(schema *Schema, outputRules dlog.Program) (*Machine, error) {
	s := schema.Clone()
	want := pastStateSchema(s.In)
	if s.State == nil {
		s.State = want
	} else {
		if len(s.State) != len(want) {
			return nil, fmt.Errorf("spocus: state schema must be exactly {past-R | R ∈ in}, got %s", s.State)
		}
		for _, d := range want {
			if a, ok := s.State.Arity(d.Name); !ok || a != d.Arity {
				return nil, fmt.Errorf("spocus: state schema must declare %s/%d", d.Name, d.Arity)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := checkOutputRules(s, outputRules); err != nil {
		return nil, err
	}
	stateRules := pastStateRules(s.In)
	return &Machine{
		kind:        KindSpocus,
		schema:      s,
		stateRules:  stateRules,
		outputRules: outputRules,
		cumulative:  cumulativeHeads(stateRules),
	}, nil
}

// NewExtended constructs a Spocus transducer extended with additional
// cumulative state rules (positive bodies, projections allowed) — the class
// of Proposition 3.1. Every input relation still gets its implicit past-R
// cumulation rule; extraStateRules may define further state relations from
// positive bodies over in ∪ state ∪ db.
func NewExtended(schema *Schema, extraStateRules, outputRules dlog.Program) (*Machine, error) {
	s := schema.Clone()
	implicit := pastStateSchema(s.In)
	var err error
	if s.State == nil {
		s.State = implicit
	} else {
		s.State, err = s.State.Union(implicit)
		if err != nil {
			return nil, fmt.Errorf("extended: %v", err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, r := range extraStateRules {
		if !s.State.Has(r.Head.Pred) {
			return nil, fmt.Errorf("extended: state rule head %s is not a state relation", r.Head.Pred)
		}
		if !r.Cumulative {
			return nil, fmt.Errorf("extended: state rule %q must be cumulative (+:-)", r)
		}
		for _, l := range r.Body {
			if l.Kind == dlog.LitNeg {
				return nil, fmt.Errorf("extended: state rule %q uses negation", r)
			}
			if l.Kind == dlog.LitPos && !s.In.Has(l.Atom.Pred) && !s.DB.Has(l.Atom.Pred) && !s.State.Has(l.Atom.Pred) {
				return nil, fmt.Errorf("extended: state rule %q references unknown relation %s", r, l.Atom.Pred)
			}
		}
	}
	if err := extraStateRules.CheckSafe(); err != nil {
		return nil, err
	}
	if err := checkOutputRules(s, outputRules); err != nil {
		return nil, err
	}
	stateRules := append(pastStateRules(s.In), extraStateRules...)
	return &Machine{
		kind:        KindExtended,
		schema:      s,
		stateRules:  stateRules,
		outputRules: outputRules,
		cumulative:  cumulativeHeads(stateRules),
	}, nil
}

// NewGeneral constructs an unrestricted rule-based transducer: state rules
// (cumulative or not) and output rules may be any safe stratifiable datalog
// over the schema. This class is Turing-complete in combination and none of
// the decision procedures apply to it; it exists to demonstrate the
// undecidability boundary.
func NewGeneral(schema *Schema, stateRules, outputRules dlog.Program) (*Machine, error) {
	s := schema.Clone()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, r := range stateRules {
		if !s.State.Has(r.Head.Pred) {
			return nil, fmt.Errorf("general: state rule head %s is not a state relation", r.Head.Pred)
		}
	}
	for _, r := range outputRules {
		if !s.Out.Has(r.Head.Pred) {
			return nil, fmt.Errorf("general: output rule head %s is not an output relation", r.Head.Pred)
		}
	}
	if err := stateRules.CheckSafe(); err != nil {
		return nil, err
	}
	if err := outputRules.CheckSafe(); err != nil {
		return nil, err
	}
	// State rules read the previous state, so same-relation references are
	// temporal, not recursive; only the output program must be stratifiable
	// within a single step.
	if _, err := dlog.Stratify(outputRules); err != nil {
		return nil, err
	}
	return &Machine{
		kind:        KindGeneral,
		schema:      s,
		stateRules:  stateRules,
		outputRules: outputRules,
		cumulative:  cumulativeHeads(stateRules),
	}, nil
}

// checkOutputRules enforces the Spocus output conditions (Definition 3.1):
// heads are output relations; bodies are (possibly negated) atoms over
// in ∪ state ∪ db or inequalities; every variable occurs positively.
func checkOutputRules(s *Schema, p dlog.Program) error {
	for _, r := range p {
		if r.Cumulative {
			return fmt.Errorf("output rule %q must not be cumulative", r)
		}
		if !s.Out.Has(r.Head.Pred) {
			return fmt.Errorf("output rule head %s is not an output relation", r.Head.Pred)
		}
		if a, _ := s.Out.Arity(r.Head.Pred); a != len(r.Head.Args) {
			return fmt.Errorf("output rule %q: head arity %d, schema says %d", r, len(r.Head.Args), a)
		}
	}
	allowed := func(n string) bool {
		return s.In.Has(n) || s.State.Has(n) || s.DB.Has(n)
	}
	if err := dlog.CheckSemipositive(p, allowed); err != nil {
		return err
	}
	// Arity consistency for body atoms.
	for _, r := range p {
		for _, l := range r.Body {
			if l.Kind != dlog.LitPos && l.Kind != dlog.LitNeg {
				continue
			}
			if a, ok := s.Arity(l.Atom.Pred); ok && a != len(l.Atom.Args) {
				return fmt.Errorf("rule %q: %s used with arity %d, schema says %d", r, l.Atom.Pred, len(l.Atom.Args), a)
			}
		}
	}
	return nil
}

// Step computes the successor state and the output for one transition:
// Sᵢ = σ(Iᵢ, Sᵢ₋₁, D) and Oᵢ = ω(Iᵢ, Sᵢ₋₁, D). Both functions see the
// *previous* state, per the paper's run semantics. The input instance is not
// mutated; the returned state is freshly allocated.
//
// Under the default step engine the rule programs run as compiled
// relational-algebra plans (package ra), resolved once per machine through
// the fingerprint-keyed plan cache; -step-engine=tree (or a program the
// planner cannot lower) falls back to the tree-walking dlog evaluator.
// The two engines are observationally identical — the differential suite
// in internal/ra pins Plan.Eval ≡ dlog.EvalStratified tuple for tuple.
func (m *Machine) Step(input, state, db relation.Instance) (relation.Instance, relation.Instance, error) {
	edb := dlog.MultiDB{input, state, db}
	if CurrentStepEngine() == EngineRA {
		if p, err := m.Compile(); err == nil {
			output, err := m.evalOutputRA(p, edb)
			if err != nil {
				return nil, nil, err
			}
			next, err := m.evalStateRA(p, edb, state)
			if err != nil {
				return nil, nil, err
			}
			return next, output, nil
		}
		ra.NoteTreeFallback()
	}
	output, err := m.evalOutput(edb)
	if err != nil {
		return nil, nil, err
	}
	next, err := m.evalState(edb, state)
	if err != nil {
		return nil, nil, err
	}
	return next, output, nil
}

func (m *Machine) evalOutput(edb dlog.DB) (relation.Instance, error) {
	var out relation.Instance
	var err error
	if m.kind == KindGeneral {
		out, err = dlog.EvalStratified(m.outputRules, edb)
	} else {
		out, err = dlog.Eval(m.outputRules, edb)
	}
	if err != nil {
		return nil, err
	}
	// Materialize every declared output relation so empty ones print/compare
	// uniformly.
	for _, d := range m.schema.Out {
		out.Ensure(d.Name, d.Arity)
	}
	return out, nil
}

// nextPrefix tags state-rule heads during evaluation so that body references
// to state relations read the previous state instead of the facts being
// derived: Sᵢ = σ(Iᵢ, Sᵢ₋₁, D) is a function of the previous state only.
// The NUL byte keeps the tag out of any parseable relation name.
const nextPrefix = "\x00next-"

func (m *Machine) evalState(edb dlog.DB, prev relation.Instance) (relation.Instance, error) {
	prog := make(dlog.Program, len(m.stateRules))
	for i, r := range m.stateRules {
		nr := r
		nr.Head = dlog.Atom{Pred: nextPrefix + r.Head.Pred, Args: r.Head.Args}
		prog[i] = nr
	}
	tagged, err := dlog.Eval(prog, edb)
	if err != nil {
		return nil, err
	}
	derived := relation.NewInstance()
	for name, rel := range tagged {
		derived[strings.TrimPrefix(name, nextPrefix)] = rel
	}
	return m.mergeState(derived, prev), nil
}

// mergeState combines freshly derived state facts with the previous state
// under cumulative semantics: cumulative heads keep the previous contents;
// non-cumulative heads are recomputed from scratch each step.
//
// The merge is copy-on-write: a cumulative relation with no new facts this
// step is carried into the next state by pointer instead of being copied.
// Relations are add-only and step results are treated as immutable values
// everywhere (inputs are cloned before retention, logs and snapshots only
// read), so sharing is safe and turns the per-step merge cost from
// O(total state) into O(changed state).
func (m *Machine) mergeState(derived, prev relation.Instance) relation.Instance {
	next := relation.NewInstance()
	for _, d := range m.schema.State {
		next.Ensure(d.Name, d.Arity)
	}
	for name, prevRel := range prev {
		if !m.cumulative[name] {
			continue
		}
		if d := derived[name]; d != nil && d.Len() > 0 && !d.SubsetOf(prevRel) {
			merged := prevRel.Clone()
			merged.UnionWith(d)
			next[name] = merged
		} else if prevRel.Len() > 0 {
			next[name] = prevRel
		}
	}
	for name, d := range derived {
		if m.cumulative[name] {
			if _, ok := prev[name]; ok {
				continue // merged above
			}
		}
		if cur, ok := next[name]; ok && cur.Len() > 0 {
			cur.UnionWith(d)
		} else if d.Len() > 0 || !ok {
			next[name] = d
		}
	}
	return next
}

// Run is the trace of a transducer on a database and an input sequence: the
// state, output, and log sequences of Definition 2.2.
type Run struct {
	DB      relation.Instance
	Inputs  relation.Sequence
	States  relation.Sequence
	Outputs relation.Sequence
	Logs    relation.Sequence
}

// Len returns the number of steps in the run.
func (r *Run) Len() int { return len(r.Inputs) }

// LastOutput returns the final output instance, or an empty instance for the
// empty run.
func (r *Run) LastOutput() relation.Instance {
	if len(r.Outputs) == 0 {
		return relation.NewInstance()
	}
	return r.Outputs[len(r.Outputs)-1]
}

// Execute runs the machine on db and the input sequence, producing the full
// trace. Inputs must use only input relations; unknown or wrongly-typed
// relations are rejected.
func (m *Machine) Execute(db relation.Instance, inputs relation.Sequence) (*Run, error) {
	for i, in := range inputs {
		for name, rel := range in {
			a, ok := m.schema.In.Arity(name)
			if !ok {
				return nil, fmt.Errorf("step %d: %s is not an input relation", i+1, name)
			}
			if rel.Len() > 0 && rel.Arity() != a {
				return nil, fmt.Errorf("step %d: input %s has arity %d, schema says %d", i+1, name, rel.Arity(), a)
			}
		}
	}
	run := &Run{DB: db, Inputs: inputs.Clone()}
	state := relation.NewInstance()
	for _, d := range m.schema.State {
		state.Ensure(d.Name, d.Arity)
	}
	for _, in := range run.Inputs {
		next, out, err := m.Step(in, state, db)
		if err != nil {
			return nil, err
		}
		run.Outputs = append(run.Outputs, out)
		run.States = append(run.States, next)
		run.Logs = append(run.Logs, m.schema.LogDelta(in, out))
		state = next
	}
	return run, nil
}

// AcceptMode selects one of the three input-control disciplines of Section 4.
type AcceptMode int

const (
	// AcceptAll places no restriction: every run is valid.
	AcceptAll AcceptMode = iota
	// ErrorFree accepts runs in which no output contains an error fact.
	ErrorFree
	// OKEveryStep accepts runs in which every output contains ok.
	OKEveryStep
	// AcceptAtEnd accepts finite runs whose last output contains accept.
	AcceptAtEnd
)

func (a AcceptMode) String() string {
	switch a {
	case AcceptAll:
		return "all"
	case ErrorFree:
		return "error-free"
	case OKEveryStep:
		return "ok-every-step"
	case AcceptAtEnd:
		return "accept-at-end"
	}
	return "unknown"
}

// ParseAcceptMode parses an acceptance-mode name as produced by
// AcceptMode.String, accepting the short aliases "ok" and "accept" used by
// the command-line tools. The empty string parses as AcceptAll.
func ParseAcceptMode(s string) (AcceptMode, error) {
	switch s {
	case "", "all":
		return AcceptAll, nil
	case "error-free":
		return ErrorFree, nil
	case "ok", "ok-every-step":
		return OKEveryStep, nil
	case "accept", "accept-at-end":
		return AcceptAtEnd, nil
	}
	return AcceptAll, fmt.Errorf("unknown acceptance mode %q", s)
}

// Valid reports whether the run is valid under the given acceptance mode.
func (r *Run) Valid(mode AcceptMode) bool {
	switch mode {
	case AcceptAll:
		return true
	case ErrorFree:
		for _, out := range r.Outputs {
			if out.Rel(ErrorRel).Len() > 0 {
				return false
			}
		}
		return true
	case OKEveryStep:
		for _, out := range r.Outputs {
			if out.Rel(OKRel).Len() == 0 {
				return false
			}
		}
		return true
	case AcceptAtEnd:
		return len(r.Outputs) > 0 && r.LastOutput().Rel(AcceptRel).Len() > 0
	}
	return false
}

// ErrorFreePrefix returns the length of the longest error-free prefix of the
// run (the full length if the run is error-free).
func (r *Run) ErrorFreePrefix() int {
	for i, out := range r.Outputs {
		if out.Rel(ErrorRel).Len() > 0 {
			return i
		}
	}
	return len(r.Outputs)
}

// FormatTrace renders the run in the style of Figures 1 and 2 of the paper:
// numbered steps with input and output instances (and optionally states and
// logs).
func (r *Run) FormatTrace(showState, showLog bool) string {
	var b strings.Builder
	for i := range r.Inputs {
		fmt.Fprintf(&b, "step %d\n", i+1)
		fmt.Fprintf(&b, "  input:  %s\n", r.Inputs[i])
		fmt.Fprintf(&b, "  output: %s\n", r.Outputs[i])
		if showState {
			fmt.Fprintf(&b, "  state:  %s\n", r.States[i])
		}
		if showLog {
			fmt.Fprintf(&b, "  log:    %s\n", r.Logs[i])
		}
	}
	return b.String()
}

// Constants returns the sorted constants occurring in the machine's rules.
func (m *Machine) Constants() []relation.Const {
	seen := make(map[relation.Const]bool)
	for _, c := range m.stateRules.Constants() {
		seen[c] = true
	}
	for _, c := range m.outputRules.Constants() {
		seen[c] = true
	}
	out := make([]relation.Const, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the machine as a parseable transducer program.
func (m *Machine) String() string {
	var b strings.Builder
	name := m.name
	if name == "" {
		name = "anonymous"
	}
	fmt.Fprintf(&b, "transducer %s\n", name)
	b.WriteString("schema\n")
	writeDecls := func(kw string, s relation.Schema) {
		if len(s) == 0 {
			return
		}
		parts := make([]string, len(s))
		for i, d := range s {
			parts[i] = fmt.Sprintf("%s/%d", d.Name, d.Arity)
		}
		fmt.Fprintf(&b, "  %s: %s;\n", kw, strings.Join(parts, ", "))
	}
	writeDecls("database", m.schema.DB)
	writeDecls("input", m.schema.In)
	writeDecls("state", m.schema.State)
	writeDecls("output", m.schema.Out)
	fmt.Fprintf(&b, "  log: %s;\n", strings.Join(m.schema.Log, ", "))
	b.WriteString("state rules\n")
	for _, r := range m.stateRules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	b.WriteString("output rules\n")
	for _, r := range m.outputRules {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}
