package core

import "testing"

func TestParseAcceptMode(t *testing.T) {
	cases := []struct {
		in   string
		want AcceptMode
		err  bool
	}{
		{"", AcceptAll, false},
		{"all", AcceptAll, false},
		{"error-free", ErrorFree, false},
		{"ok", OKEveryStep, false},
		{"ok-every-step", OKEveryStep, false},
		{"accept", AcceptAtEnd, false},
		{"accept-at-end", AcceptAtEnd, false},
		{"bogus", AcceptAll, true},
	}
	for _, c := range cases {
		got, err := ParseAcceptMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseAcceptMode(%q) error = %v, want error %v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("ParseAcceptMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// Round-trip: every mode's String parses back to itself.
	for _, m := range []AcceptMode{AcceptAll, ErrorFree, OKEveryStep, AcceptAtEnd} {
		got, err := ParseAcceptMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseAcceptMode(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
}
