package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dlog"
	"repro/internal/ra"
	"repro/internal/relation"
)

// StepEngine selects how Machine.Step evaluates the rule programs: the
// compiled streaming relational-algebra engine (package ra, the default)
// or the original tree-walking evaluator (package dlog). The setting is
// process-wide — every call site that steps machines (sessions, network
// joint steps, the verifier's ground-outs, live cold queries) flows
// through Machine.Step and so through this switch.
type StepEngine int32

const (
	// EngineRA is the compiled plan engine (default).
	EngineRA StepEngine = iota
	// EngineTree is the tree-walking dlog evaluator, kept as a fallback
	// (-step-engine=tree) and as the oracle of the differential suite.
	EngineTree
)

func (e StepEngine) String() string {
	if e == EngineTree {
		return "tree"
	}
	return "ra"
}

// ParseStepEngine parses "ra" or "tree"; the empty string is the default.
func ParseStepEngine(s string) (StepEngine, error) {
	switch s {
	case "", "ra":
		return EngineRA, nil
	case "tree":
		return EngineTree, nil
	}
	return EngineRA, fmt.Errorf("unknown step engine %q (want ra or tree)", s)
}

var stepEngine atomic.Int32 // holds a StepEngine; zero value = EngineRA

// SetStepEngine switches the process-wide step engine and returns the
// previous setting (tests restore it).
func SetStepEngine(e StepEngine) StepEngine {
	return StepEngine(stepEngine.Swap(int32(e)))
}

// CurrentStepEngine returns the process-wide step engine.
func CurrentStepEngine() StepEngine { return StepEngine(stepEngine.Load()) }

// machinePlans is one machine's compiled form: the output program and the
// next-tagged state program lowered over a shared intern table (the
// per-store constant table of the plan). err records a compile failure,
// in which case the machine permanently steps on the tree engine.
type machinePlans struct {
	output *ra.Plan
	state  *ra.Plan
	err    error
}

// planCache shares compiled plans across machines with the same
// fingerprint: every session of a registry model parses its own Machine,
// but they all step on one compiled plan (and one intern table).
var planCache sync.Map // fingerprint -> *machinePlans

// PlanCacheLen reports the number of distinct machines with cached plans.
func PlanCacheLen() int {
	n := 0
	planCache.Range(func(_, _ any) bool { n++; return true })
	return n
}

// Compile returns the machine's compiled plans, building and caching them
// on first use. The cache is keyed on the machine fingerprint, so two
// machines parsed from the same source share plans and intern table. A
// compile error is cached too: such machines step on the tree engine.
//
// The state program compiles in no-shadow mode instead of the tree
// engine's head-tagging: both pin state-rule body reads to the previous
// state, but no-shadow needs no rename pass over the derived instance.
func (m *Machine) Compile() (*machinePlans, error) {
	if p := m.plans.Load(); p != nil {
		return p, p.err
	}
	fp := m.Fingerprint()
	if v, ok := planCache.Load(fp); ok {
		ra.NoteCacheHit()
		p := v.(*machinePlans)
		m.plans.Store(p)
		return p, p.err
	}
	p := &machinePlans{}
	in := ra.NewInterner()
	p.output, p.err = ra.Compile(m.outputRules, in)
	if p.err == nil {
		p.state, p.err = ra.CompileNoShadow(m.stateRules, in)
	}
	if actual, loaded := planCache.LoadOrStore(fp, p); loaded {
		ra.NoteCacheHit()
		p = actual.(*machinePlans)
	}
	m.plans.Store(p)
	return p, p.err
}

// ExplainPlan renders the machine's compiled output and state plans for
// inspection — the payload of GET /debug/plan.
func (m *Machine) ExplainPlan() (string, error) {
	p, err := m.Compile()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	name := m.name
	if name == "" {
		name = "anonymous"
	}
	fmt.Fprintf(&b, "machine %s (%s) fingerprint %s\n", name, m.kind, m.Fingerprint())
	fmt.Fprintf(&b, "interned constants: %d\n", p.output.Interner().Len())
	b.WriteString("output plan:\n")
	b.WriteString(indent(p.output.Explain(), "  "))
	b.WriteString("state plan (no-shadow: bodies read the previous state):\n")
	b.WriteString(indent(p.state.Explain(), "  "))
	return b.String(), nil
}

func indent(s, by string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = by + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// evalOutputRA evaluates the output program through the compiled plan.
func (m *Machine) evalOutputRA(p *machinePlans, edb dlog.DB) (relation.Instance, error) {
	out, err := p.output.EvalCached(edb, m.stepCache())
	if err != nil {
		return nil, err
	}
	for _, d := range m.schema.Out {
		out.Ensure(d.Name, d.Arity)
	}
	return out, nil
}

// evalStateRA evaluates the state program through the compiled plan and
// applies cumulative semantics, mirroring evalState. The plan is compiled
// no-shadow, so the derived instance already uses untagged state names.
func (m *Machine) evalStateRA(p *machinePlans, edb dlog.DB, prev relation.Instance) (relation.Instance, error) {
	derived, err := p.state.EvalCached(edb, m.stepCache())
	if err != nil {
		return nil, err
	}
	return m.mergeState(derived, prev), nil
}
