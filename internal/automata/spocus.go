package automata

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/relation"
)

// maxPropositionalInputs bounds the 2^|inputs| state construction of
// ToAutomaton; the paper's propositional examples have a handful of inputs.
const maxPropositionalInputs = 12

// ToAutomaton builds the NFA accepting Gen(T) for a propositional Spocus
// transducer T: all relations have arity 0, and no reachable (state, input)
// pair outputs more than one proposition. Automaton states are the
// reachable "past" sets; a step outputting proposition o becomes an
// o-transition, and every state accepts (Gen(T) is prefix-closed by the
// inflationary-state argument of Section 3.1).
//
// Generation is read STRICTLY: a word w ∈ Gen(T) iff some run of length |w|
// outputs exactly {w_i} at every step i — silent (empty-output) steps
// disqualify a run. The paper's phrase "output at most one proposition at a
// time … viewed as words" is ambiguous between this reading and one where
// empty outputs contribute ε; the reproduction found that under the
// ε-reading the characterization's hard direction is FALSE for any
// construction: the transducer state is exactly the set of past inputs, so
// delivering the inputs of a legitimate run one at a time in reverse order
// silently assembles the same state with no output, after which any
// enabled continuation would emit a word missing its prefix. Under the
// strict reading such poisoned runs simply generate nothing, and the
// characterization (prefix-closed regular languages with flat automata)
// holds constructively in both directions — see FromAutomaton and the E9
// experiment.
func ToAutomaton(m *core.Machine) (*NFA, error) {
	s := m.Schema()
	for _, part := range []relation.Schema{s.In, s.Out, s.DB} {
		for _, d := range part {
			if d.Arity != 0 {
				return nil, fmt.Errorf("automata: relation %s/%d is not propositional", d.Name, d.Arity)
			}
		}
	}
	if len(s.DB) > 0 {
		return nil, fmt.Errorf("automata: propositional transducers with database relations are not supported (fix a database and inline it instead)")
	}
	if m.Kind() != core.KindSpocus {
		return nil, fmt.Errorf("automata: %s machine is not Spocus", m.Kind())
	}
	inputs := s.In.Names()
	if len(inputs) > maxPropositionalInputs {
		return nil, fmt.Errorf("automata: %d input propositions exceed the construction limit %d", len(inputs), maxPropositionalInputs)
	}
	outputs := s.Out.Names()
	sort.Strings(outputs)

	// Past sets are encoded as bitmasks over the inputs.
	subsetInstance := func(mask int) relation.Instance {
		in := relation.NewInstance()
		for i, name := range inputs {
			if mask&(1<<i) != 0 {
				in.Add(name, relation.Tuple{})
			}
		}
		return in
	}
	stateInstance := func(mask int) relation.Instance {
		st := relation.NewInstance()
		for i, name := range inputs {
			st.Ensure(core.Past(name), 0)
			if mask&(1<<i) != 0 {
				st.Add(core.Past(name), relation.Tuple{})
			}
		}
		return st
	}

	a := NewNFA(0, outputs, 0)
	index := map[int]int{} // past mask -> automaton state
	var order []int
	push := func(mask int) int {
		if i, ok := index[mask]; ok {
			return i
		}
		i := a.AddState()
		index[mask] = i
		a.SetAccept(i)
		order = append(order, mask)
		return i
	}
	push(0)
	db := relation.NewInstance()
	for i := 0; i < len(order); i++ {
		mask := order[i]
		from := index[mask]
		st := stateInstance(mask)
		for amask := 0; amask < 1<<len(inputs); amask++ {
			in := subsetInstance(amask)
			_, out, err := m.Step(in, st, db)
			if err != nil {
				return nil, err
			}
			var emitted []string
			for _, o := range outputs {
				if out.Rel(o).Len() > 0 {
					emitted = append(emitted, o)
				}
			}
			if len(emitted) > 1 {
				return nil, fmt.Errorf("automata: not a propositional-output transducer: past %v with input %v outputs %v", maskNames(mask, inputs), maskNames(amask, inputs), emitted)
			}
			if len(emitted) == 0 {
				// Silent step: disqualifies the run under the strict
				// generation semantics, so it contributes no transition and
				// its successor state is not explored through it.
				continue
			}
			a.AddTransition(from, emitted[0], push(mask|amask))
		}
	}
	return a, nil
}

func maskNames(mask int, names []string) []string {
	var out []string
	for i, n := range names {
		if mask&(1<<i) != 0 {
			out = append(out, n)
		}
	}
	return out
}

// FromAutomaton builds a propositional Spocus transducer T with
// Gen(T) = L(d), for a flat, prefix-closed DFA d — the constructive
// converse of the Section 3.1 characterization. The transducer has one
// input proposition per non-self-loop edge of the (trimmed, minimized)
// automaton and one per self-loop; its state tracks the traversed path, and
// output rules fire only on single-input steps consistent with the path, so
// the emitted word always follows the automaton.
func FromAutomaton(d *DFA) (*core.Machine, error) {
	m := d.Minimize()
	if !m.PrefixClosed() {
		return nil, fmt.Errorf("automata: language is not prefix-closed; no Spocus transducer generates it")
	}
	if !m.Flat() {
		return nil, fmt.Errorf("automata: automaton has a non-self-loop cycle; Section 3.1 excludes such languages")
	}
	live := m.liveStates()
	if !live[m.start] {
		// Empty language: a transducer with no output rules.
		schema := &core.Schema{
			In:  relation.Schema{{Name: "noop", Arity: 0}},
			Out: relation.Schema{{Name: "never", Arity: 0}},
			Log: []string{"never"},
		}
		return core.NewSpocus(schema, nil)
	}

	type edge struct {
		from, to int
		sym      string
	}
	var dagEdges, loops []edge
	for s := 0; s < m.numStates; s++ {
		if !live[s] {
			continue
		}
		for _, sym := range m.alphabet {
			t := m.trans[s][sym]
			if !live[t] {
				continue
			}
			if t == s {
				loops = append(loops, edge{s, t, sym})
			} else {
				dagEdges = append(dagEdges, edge{s, t, sym})
			}
		}
	}
	edgeProp := func(e edge, i int) string {
		return fmt.Sprintf("x%d-%d-%d", e.from, e.to, i)
	}
	loopProp := func(e edge, i int) string {
		return fmt.Sprintf("y%d-%d", e.from, i)
	}
	var inputs []string
	dagProp := make([]string, len(dagEdges))
	for i, e := range dagEdges {
		dagProp[i] = edgeProp(e, i)
		inputs = append(inputs, dagProp[i])
	}
	loopPropN := make([]string, len(loops))
	for i, e := range loops {
		loopPropN[i] = loopProp(e, i)
		inputs = append(inputs, loopPropN[i])
	}
	if len(inputs) == 0 {
		inputs = []string{"noop"}
	}

	// Enumerate simple paths from the start state in the DAG of non-loop
	// edges; flatness guarantees termination.
	type path struct {
		state int
		edges []int // indexes into dagEdges
	}
	var paths []path
	var rec func(p path)
	rec = func(p path) {
		paths = append(paths, p)
		for i, e := range dagEdges {
			if e.from == p.state {
				rec(path{state: e.to, edges: append(append([]int(nil), p.edges...), i)})
			}
		}
	}
	rec(path{state: m.start})

	// atPath(p) = exactly the path's edge props are past.
	atPath := func(p path) []dlog.Literal {
		onPath := make(map[int]bool, len(p.edges))
		for _, i := range p.edges {
			onPath[i] = true
		}
		var lits []dlog.Literal
		for i := range dagEdges {
			atom := dlog.NewAtom(core.Past(dagProp[i]))
			if onPath[i] {
				lits = append(lits, dlog.Pos(atom))
			} else {
				lits = append(lits, dlog.Neg(atom))
			}
		}
		return lits
	}
	// Simultaneous inputs are resolved by PRIORITY, never by silence (the
	// paper's ab*c example uses the same idiom: its b rule yields to a
	// simultaneous C). Among the edges leaving a state the higher-indexed
	// one wins; every self-loop yields to every edge from its state. An
	// input that loses a tie, repeats a consumed edge out of order, or
	// arrives off-path enters the cumulative state and permanently
	// disables every output rule whose exact-path guard it violates; under
	// the strict generation semantics (see ToAutomaton) a run with a
	// silent step contributes no word, so such poisoned runs are harmless.
	var rules dlog.Program
	addRule := func(sym, trigger string, p path, beatenBy []string) {
		body := []dlog.Literal{dlog.Pos(dlog.NewAtom(trigger))}
		body = append(body, atPath(p)...)
		for _, b := range beatenBy {
			body = append(body, dlog.Neg(dlog.NewAtom(b)))
		}
		rules = append(rules, dlog.Rule{Head: dlog.NewAtom(outProp(sym)), Body: body})
	}
	for _, p := range paths {
		// An edge rule demands its trigger be the ONLY dag-edge proposition
		// present this step: a second edge arriving simultaneously would be
		// consumed silently and could complete a longer path in the state
		// without its letter ever being emitted. (Self-loop propositions
		// may ride along harmlessly — they are not part of any path guard
		// and remain re-firable.)
		var fromHere []int
		for i, e := range dagEdges {
			if e.from == p.state {
				fromHere = append(fromHere, i)
			}
		}
		for _, i := range fromHere {
			var beatenBy []string
			for j := range dagEdges {
				if j != i {
					beatenBy = append(beatenBy, dagProp[j])
				}
			}
			addRule(dagEdges[i].sym, dagProp[i], p, beatenBy)
		}
		var loopsHere []int
		for i, e := range loops {
			if e.from == p.state {
				loopsHere = append(loopsHere, i)
			}
		}
		for k, i := range loopsHere {
			var beatenBy []string
			for _, j := range fromHere {
				beatenBy = append(beatenBy, dagProp[j])
			}
			for _, j := range loopsHere[k+1:] {
				beatenBy = append(beatenBy, loopPropN[j])
			}
			addRule(loops[i].sym, loopPropN[i], p, beatenBy)
		}
	}

	inSchema := make(relation.Schema, len(inputs))
	for i, n := range inputs {
		inSchema[i] = relation.Decl{Name: n, Arity: 0}
	}
	outSchema := make(relation.Schema, len(m.alphabet))
	logNames := make([]string, len(m.alphabet))
	for i, sym := range m.alphabet {
		outSchema[i] = relation.Decl{Name: outProp(sym), Arity: 0}
		logNames[i] = outProp(sym)
	}
	schema := &core.Schema{In: inSchema, Out: outSchema, Log: logNames}
	t, err := core.NewSpocus(schema, rules)
	if err != nil {
		return nil, err
	}
	return t.SetName("from-automaton"), nil
}

// outProp names the output proposition for an alphabet symbol; symbols that
// are not valid lower-case relation names are prefixed.
func outProp(sym string) string {
	if sym == "" {
		return "out-eps"
	}
	r := sym[0]
	if r >= 'a' && r <= 'z' {
		return sym
	}
	return "out-" + strings.ToLower(sym)
}
