package automata

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/models"
)

// abStarC builds the NFA for the prefix closure of ab*c over {a,b,c}:
// states 0 -a-> 1 -b-> 1 -c-> 2, all accepting.
func abStarC() *NFA {
	a := NewNFA(3, []string{"a", "b", "c"}, 0)
	a.SetAccept(0)
	a.SetAccept(1)
	a.SetAccept(2)
	a.AddTransition(0, "a", 1)
	a.AddTransition(1, "b", 1)
	a.AddTransition(1, "c", 2)
	return a
}

// abLoop builds the minimal DFA-ish NFA for the prefix closure of (ab)*:
// a 2-cycle, the paper's non-example.
func abLoop() *NFA {
	a := NewNFA(2, []string{"a", "b"}, 0)
	a.SetAccept(0)
	a.SetAccept(1)
	a.AddTransition(0, "a", 1)
	a.AddTransition(1, "b", 0)
	return a
}

func w(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "")
}

func TestNFAAccepts(t *testing.T) {
	a := abStarC()
	for _, word := range []string{"", "a", "ab", "abb", "abbc", "ac"} {
		if !a.Accepts(w(word)) {
			t.Errorf("abStarC rejects %q", word)
		}
	}
	for _, word := range []string{"b", "c", "abca", "abcb", "aa", "ba"} {
		if a.Accepts(w(word)) {
			t.Errorf("abStarC accepts %q", word)
		}
	}
}

func TestEpsilonTransitions(t *testing.T) {
	// 0 --ε--> 1 --a--> 2, only 2 accepting: language {a}.
	n := NewNFA(3, []string{"a"}, 0)
	n.SetAccept(2)
	n.AddEpsilon(0, 1)
	n.AddTransition(1, "a", 2)
	if !n.Accepts(w("a")) {
		t.Error("ε-closure missed the transition")
	}
	if n.Accepts(w("")) || n.Accepts(w("aa")) {
		t.Error("language wrong")
	}
	d := n.Determinize()
	if !d.Accepts(w("a")) || d.Accepts(w("")) {
		t.Error("determinization of ε-NFA wrong")
	}
	// ε-cycles must not loop the closure computation.
	c := NewNFA(2, []string{"a"}, 0)
	c.SetAccept(1)
	c.AddEpsilon(0, 1)
	c.AddEpsilon(1, 0)
	if !c.Accepts(nil) {
		t.Error("ε-cycle closure wrong")
	}
}

func TestDeterminizeAgreesWithNFA(t *testing.T) {
	a := abStarC()
	d := a.Determinize()
	words := []string{"", "a", "b", "c", "ab", "ac", "abc", "abbc", "abca", "cba", "aab"}
	for _, word := range words {
		if a.Accepts(w(word)) != d.Accepts(w(word)) {
			t.Errorf("NFA and DFA disagree on %q", word)
		}
	}
}

func TestMinimize(t *testing.T) {
	d := abStarC().Determinize()
	m := d.Minimize()
	// Language of ab*c prefixes needs 4 states: start, after-a, after-c,
	// dead.
	if m.NumStates() != 4 {
		t.Errorf("minimal DFA has %d states, want 4", m.NumStates())
	}
	eq, err := Equivalent(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("minimization changed the language")
	}
}

func TestEquivalentAndComplement(t *testing.T) {
	d1 := abStarC().Determinize().Minimize()
	d2 := abLoop().Determinize().Minimize()
	// abLoop is over {a,b}; rebuild over shared alphabet for comparison.
	a3 := NewNFA(2, []string{"a", "b", "c"}, 0)
	a3.SetAccept(0)
	a3.SetAccept(1)
	a3.AddTransition(0, "a", 1)
	a3.AddTransition(1, "b", 0)
	d2 = a3.Determinize().Minimize()
	eq, err := Equivalent(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("distinct languages reported equivalent")
	}
	comp := d1.Complement()
	inter, err := Product(d1, comp, func(x, y bool) bool { return x && y })
	if err != nil {
		t.Fatal(err)
	}
	if !inter.Empty() {
		t.Error("L ∩ complement(L) non-empty")
	}
	union, err := Product(d1, comp, func(x, y bool) bool { return x || y })
	if err != nil {
		t.Fatal(err)
	}
	if union.Empty() || !union.Accepts(w("cccc")) {
		t.Error("L ∪ complement(L) is not total")
	}
}

func TestPrefixClosed(t *testing.T) {
	if !abStarC().Determinize().PrefixClosed() {
		t.Error("prefix closure of ab*c reported not prefix-closed")
	}
	// Language {ab}: not prefix-closed (a not accepted).
	a := NewNFA(3, []string{"a", "b"}, 0)
	a.SetAccept(2)
	a.AddTransition(0, "a", 1)
	a.AddTransition(1, "b", 2)
	if a.Determinize().PrefixClosed() {
		t.Error("{ab} reported prefix-closed")
	}
}

func TestFlatness(t *testing.T) {
	if !abStarC().Determinize().Flat() {
		t.Error("ab*c prefixes: automaton should be flat")
	}
	if abLoop().Determinize().Flat() {
		t.Error("(ab)* prefixes: 2-cycle reported flat (the paper's non-example)")
	}
}

// TestABCTransducerGeneratesAbStarC is the Section 3.1 example end-to-end:
// the ab*c transducer's generated language equals the prefix closure of
// ab*c (experiment E9).
func TestABCTransducerGeneratesAbStarC(t *testing.T) {
	nfa, err := ToAutomaton(models.ABC())
	if err != nil {
		t.Fatal(err)
	}
	got := nfa.Determinize().Minimize()
	want := abStarC().Determinize().Minimize()
	eq, err := Equivalent(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("Gen(abc) ≠ prefixes of ab*c; Gen sample: %v", got.Words(4, 20))
	}
	if !got.Flat() {
		t.Error("Gen(abc) automaton not flat")
	}
	if !got.PrefixClosed() {
		t.Error("Gen(abc) not prefix-closed")
	}
}

// TestFromAutomatonRoundTrip is the constructive converse: build a
// transducer from a flat automaton, then recover its language.
func TestFromAutomatonRoundTrip(t *testing.T) {
	want := abStarC().Determinize().Minimize()
	m, err := FromAutomaton(want)
	if err != nil {
		t.Fatal(err)
	}
	nfa, err := ToAutomaton(m)
	if err != nil {
		t.Fatal(err)
	}
	got := nfa.Determinize().Minimize()
	eq, err := Equivalent(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("round trip changed the language; got words %v, want words %v",
			got.Words(4, 20), want.Words(4, 20))
	}
}

func TestFromAutomatonRejectsNonFlat(t *testing.T) {
	if _, err := FromAutomaton(abLoop().Determinize()); err == nil {
		t.Error("(ab)* prefixes accepted by FromAutomaton")
	}
}

func TestFromAutomatonRejectsNonPrefixClosed(t *testing.T) {
	a := NewNFA(2, []string{"a"}, 0)
	a.SetAccept(1)
	a.AddTransition(0, "a", 1)
	if _, err := FromAutomaton(a.Determinize()); err == nil {
		t.Error("non-prefix-closed language accepted")
	}
}

// randomFlatDFA generates a random flat prefix-closed automaton: a random
// DAG over k states with random self-loops, all states accepting.
func randomFlatDFA(r *rand.Rand) *DFA {
	k := 2 + r.Intn(3)
	alphabet := []string{"a", "b"}
	a := NewNFA(k, alphabet, 0)
	for s := 0; s < k; s++ {
		a.SetAccept(s)
	}
	for s := 0; s < k; s++ {
		for _, sym := range alphabet {
			switch r.Intn(3) {
			case 0:
				// DAG edge to a strictly later state.
				if s+1 < k {
					a.AddTransition(s, sym, s+1+r.Intn(k-s-1))
				}
			case 1:
				a.AddTransition(s, sym, s) // self loop
			}
		}
	}
	return a.Determinize().Minimize()
}

// TestPropRoundTripOnRandomFlatAutomata: FromAutomaton∘ToAutomaton is the
// identity on languages, for random flat prefix-closed automata.
func TestPropRoundTripOnRandomFlatAutomata(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := randomFlatDFA(r)
		if !want.Flat() || !want.PrefixClosed() {
			return true // construction guarantees this; skip degenerate
		}
		m, err := FromAutomaton(want)
		if err != nil {
			t.Logf("FromAutomaton: %v", err)
			return false
		}
		nfa, err := ToAutomaton(m)
		if err != nil {
			// The edge-per-input construction can exceed the propositional
			// input limit for dense automata; that is a size limit, not a
			// correctness failure.
			return true
		}
		got := nfa.Determinize().Minimize()
		eq, err := Equivalent(got, want)
		if err != nil {
			t.Logf("Equivalent: %v", err)
			return false
		}
		if !eq {
			t.Logf("language changed; got %v want %v", got.Words(4, 10), want.Words(4, 10))
		}
		return eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropMinimizationIdempotent: minimizing twice gives the same automaton
// size and language.
func TestPropMinimizationIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomFlatDFA(r)
		m := d.Minimize()
		m2 := m.Minimize()
		if m.NumStates() != m2.NumStates() {
			return false
		}
		eq, err := Equivalent(m, m2)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWordsEnumeration(t *testing.T) {
	d := abStarC().Determinize().Minimize()
	words := d.Words(3, 0)
	joined := make([]string, len(words))
	for i, word := range words {
		joined[i] = strings.Join(word, "")
	}
	want := map[string]bool{"": true, "a": true, "ab": true, "ac": true, "abb": true, "abc": true}
	if len(joined) != len(want) {
		t.Fatalf("Words = %v", joined)
	}
	for _, word := range joined {
		if !want[word] {
			t.Errorf("unexpected word %q", word)
		}
	}
}
