package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Failover by promotion. Each backend may run a warm follower of another
// backend (spocus-server -follow; see internal/replica): the follower
// continuously applies the primary's committed WAL stream into a hot
// standby engine. When a primary dies, the router promotes its follower —
// the standby's sessions install into the follower's serving engine in
// O(state), and the ring pins them there. Compare replay-based recovery,
// which costs O(steps) per session against a backend that must still be
// alive to export; promotion needs nothing from the dead primary at all.
//
// The follower topology is convention, not configuration: FollowerOf
// assigns each backend the next distinct member in sorted order, so an
// operator starts backend i with -follow pointing at FollowerOf's answer
// and the router discovers the actual links live from /replica/state.

// FollowerOf returns the conventional follower for addr among members: the
// next distinct member in sorted ring order (wrapping), or "" when there is
// no other member. Deployments that follow the convention need no extra
// configuration for the router to find a dead primary's standby.
func FollowerOf(members []string, addr string) string {
	for i, m := range members {
		if m == addr {
			next := members[(i+1)%len(members)]
			if next == addr {
				return ""
			}
			return next
		}
	}
	return ""
}

// replicaState mirrors internal/replica's GET /replica/state response (kept
// structurally, not by import: the router speaks to backends only over HTTP).
type replicaState struct {
	Following string `json:"following"`
	Promoted  bool   `json:"promoted"`
	Lag       int64  `json:"lag"`
	Sessions  int    `json:"sessions"`
}

// followerInfo is one cached discovery entry: which backend follows primary,
// and the lag it reported when last asked.
type followerInfo struct {
	addr string
	lag  int64
	seen time.Time
}

// followers caches the follower topology (primary → follower) so read
// routing does not probe /replica/state on every request.
type followers struct {
	mu      sync.Mutex
	byPrim  map[string]followerInfo
	scanned time.Time
}

// followerTTL bounds staleness of a cached follower entry; entries older
// than this are re-probed before use (and the reported lag re-read).
const followerTTL = 2 * time.Second

// followerFor returns the backend currently following primary, with its
// last-reported lag, refreshing the cache entry when stale. ok is false
// when no live backend reports following primary.
func (rt *Router) followerFor(primary string) (addr string, lag int64, ok bool) {
	rt.followersMu.Lock()
	if rt.followerCache == nil {
		rt.followerCache = make(map[string]followerInfo)
	}
	fi, have := rt.followerCache[primary]
	rt.followersMu.Unlock()
	if have && time.Since(fi.seen) < followerTTL {
		return fi.addr, fi.lag, fi.addr != ""
	}
	// Probe the conventional follower first, then every other member.
	candidates := []string{}
	if c := FollowerOf(rt.ring.Members(), primary); c != "" {
		candidates = append(candidates, c)
	}
	for _, m := range rt.ring.Members() {
		if m != primary && (len(candidates) == 0 || m != candidates[0]) {
			candidates = append(candidates, m)
		}
	}
	for _, c := range candidates {
		if !rt.ring.Up(c) {
			continue
		}
		var st replicaState
		if err := rt.getJSON(c+"/replica/state", &st); err != nil {
			continue
		}
		if st.Following == primary && !st.Promoted {
			rt.followersMu.Lock()
			rt.followerCache[primary] = followerInfo{addr: c, lag: st.Lag, seen: time.Now()}
			rt.followersMu.Unlock()
			return c, st.Lag, true
		}
	}
	rt.followersMu.Lock()
	rt.followerCache[primary] = followerInfo{seen: time.Now()} // negative entry
	rt.followersMu.Unlock()
	return "", 0, false
}

// PromoteResult reports a completed promotion.
type PromoteResult struct {
	Backend  string   `json:"backend"`  // the failed primary
	Follower string   `json:"follower"` // the backend whose standby took over
	Sessions []string `json:"sessions"` // sessions now pinned to the follower
	TookMs   float64  `json:"took_ms"`
}

// Promote fails sessions over from a dead backend to its follower: the
// follower's standby engine promotes its copies into its serving engine,
// and every promoted session is pinned to the follower. Promotion refuses
// a backend the health checker still considers up unless force is set —
// promoting a live primary would fork the sessions' histories.
//
// Each pin takes the per-session handoff lock and re-verifies the session
// still routes to the dead backend before flipping, so a promotion racing
// a concurrent handoff of the same session can never pin a session away
// from a copy that just moved: whichever finishes second sees the other's
// pin and stands down (the loser's duplicate copy is deleted).
func (rt *Router) Promote(backend string, force bool) (*PromoteResult, error) {
	start := time.Now()
	known := false
	for _, m := range rt.ring.Members() {
		if m == backend {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("promote: unknown backend %s", backend)
	}
	if rt.ring.Up(backend) && !force {
		return nil, fmt.Errorf("promote: %s is up (use force to promote anyway)", backend)
	}
	fol, _, ok := rt.followerFor(backend)
	if !ok {
		return nil, fmt.Errorf("promote: no live follower of %s", backend)
	}
	var pr struct {
		Sessions []string `json:"sessions"`
		Skipped  []string `json:"skipped"`
	}
	if err := rt.postJSON(fol+"/admin/replica/promote", nil, &pr); err != nil {
		return nil, fmt.Errorf("promote on %s: %w", fol, err)
	}
	res := &PromoteResult{Backend: backend, Follower: fol, Sessions: []string{}}
	for _, id := range pr.Sessions {
		if rt.pinPromoted(id, backend, fol) {
			res.Sessions = append(res.Sessions, id)
		}
	}
	// The follower's standby is spent; forget the cache entry so reads stop
	// routing there and a future follower (if one is started) re-registers.
	rt.followersMu.Lock()
	delete(rt.followerCache, backend)
	rt.followersMu.Unlock()
	rt.m.promotions.Add(1)
	res.TookMs = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// pinPromoted pins one promoted session to the follower under the handoff
// lock, unless a concurrent handoff already moved it elsewhere — then the
// promoted copy is the duplicate and is deleted instead.
func (rt *Router) pinPromoted(id, deadPrimary, fol string) bool {
	defer rt.lockSession(id)()
	owner, err := rt.ring.Lookup(id)
	if err == nil && owner != deadPrimary && owner != fol {
		// A handoff beat us: the session lives at owner now, and the copy
		// the standby just promoted would be a second live replica.
		rt.deleteSession(fol, id)
		return false
	}
	rt.ring.Pin(id, fol)
	return true
}

// handlePromote serves POST /admin/promote?backend=URL[&force=1].
func (rt *Router) handlePromote(w http.ResponseWriter, r *http.Request) {
	backend := r.URL.Query().Get("backend")
	if backend == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "promote needs ?backend="})
		return
	}
	res, err := rt.Promote(backend, r.URL.Query().Get("force") != "")
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// getJSON GETs url and decodes the 2xx response into out.
func (rt *Router) getJSON(url string, out any) error {
	return rt.client.GetJSON(context.Background(), url, out)
}
