package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/models"
	"repro/internal/session"
)

// A network session clusters as one unit: its ID hashes to one backend
// that owns every member node, and handoff moves the whole network — spec,
// per-node states, delay buffer, and joint log — in either transport.

func jointJSONBytes(t *testing.T, joint []session.JointLogEntry) string {
	t.Helper()
	data, err := json.Marshal(joint)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRouterNetworkSession: open a generated network through the router,
// step it with node-addressed and joint-step inputs, and read the joint
// log back — end to end over the wire.
func TestRouterNetworkSession(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := "net-route-1"
	open := map[string]any{"id": id, "network": models.Network("marketplace")}
	if st := postJSON(t, tc.front.URL+"/sessions", open, nil); st != http.StatusCreated {
		t.Fatalf("open network via router: status %d", st)
	}
	// The network lives on exactly one backend.
	homes := 0
	for _, b := range tc.backends {
		if getJSON(t, b.URL+"/sessions/"+id, nil) == http.StatusOK {
			homes++
		}
	}
	if homes != 1 {
		t.Fatalf("network session has %d homes, want 1", homes)
	}
	for i, ext := range models.NetworkScript("marketplace", "widget") {
		var res session.StepResult
		if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", map[string]any{"inputs": ext}, &res); st != http.StatusOK {
			t.Fatalf("joint step %d via router: status %d", i+1, st)
		}
		if res.Seq != i+1 {
			t.Fatalf("joint step %d: seq %d", i+1, res.Seq)
		}
	}
	var lr session.LogResult
	if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &lr); st != http.StatusOK {
		t.Fatalf("joint log via router: status %d", st)
	}
	if len(lr.Joint) != 7 {
		t.Fatalf("joint log has %d entries, want 7", len(lr.Joint))
	}
	// /networks answers through the router.
	var nets struct {
		Networks []string `json:"networks"`
	}
	if st := getJSON(t, tc.front.URL+"/networks", &nets); st != http.StatusOK || len(nets.Networks) < 3 {
		t.Fatalf("GET /networks via router: status %d, %v", st, nets.Networks)
	}
}

// TestRouterNetworkHandoff moves a live network session between backends
// under both transports, asserting the joint log survives bit-for-bit and
// the network keeps stepping on its new owner.
func TestRouterNetworkHandoff(t *testing.T) {
	for _, mode := range []string{HandoffReplay, HandoffShip} {
		t.Run(mode, func(t *testing.T) {
			tc := newTestCluster(t, 3)
			id := "net-handoff-" + mode
			script := models.NetworkScript("fraud", "gadget")
			postJSON(t, tc.front.URL+"/sessions", map[string]any{"id": id, "network": models.Network("fraud")}, nil)
			for _, ext := range script[:4] {
				if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", map[string]any{"inputs": ext}, nil); st != http.StatusOK {
					t.Fatalf("pre-handoff step: status %d", st)
				}
			}
			var before session.LogResult
			getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &before)

			from, err := tc.router.Ring().Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			var to string
			for _, b := range tc.backends {
				if b.URL != from {
					to = b.URL
					break
				}
			}
			var res HandoffResult
			url := fmt.Sprintf("%s/admin/handoff?session=%s&to=%s&mode=%s", tc.front.URL, id, to, mode)
			if st := postJSON(t, url, nil, &res); st != http.StatusOK {
				t.Fatalf("network handoff (%s): status %d", mode, st)
			}
			if res.Mode != mode || res.Fallback || res.Steps != 4 {
				t.Fatalf("network handoff result %+v, want mode %s, 4 steps, no fallback", res, mode)
			}
			if st := getJSON(t, from+"/sessions/"+id, nil); st != http.StatusNotFound {
				t.Fatalf("source still serves the network: status %d", st)
			}

			var after session.LogResult
			if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &after); st != http.StatusOK {
				t.Fatalf("joint log after handoff: status %d", st)
			}
			if jointJSONBytes(t, after.Joint) != jointJSONBytes(t, before.Joint) {
				t.Fatalf("handoff changed the joint log:\n got %s\nwant %s",
					jointJSONBytes(t, after.Joint), jointJSONBytes(t, before.Joint))
			}

			// The moved network keeps stepping: finish the conversation.
			for i, ext := range script[4:] {
				var step session.StepResult
				if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", map[string]any{"inputs": ext}, &step); st != http.StatusOK {
					t.Fatalf("post-handoff step: status %d", st)
				}
				if step.Seq != 5+i {
					t.Fatalf("post-handoff seq %d, want %d", step.Seq, 5+i)
				}
			}
			var final session.LogResult
			getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &final)
			if len(final.Joint) != len(script) {
				t.Fatalf("final joint log has %d entries, want %d", len(final.Joint), len(script))
			}
		})
	}
}
