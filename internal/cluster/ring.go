// Package cluster lifts the session engine's shard boundary — already
// hash(sessionID) within one process — across processes: a consistent-hash
// ring maps session IDs onto N spocus-server backends, a health checker
// ejects dead backends from the ring, a router proxies the HTTP/JSON API,
// and deterministic-replay handoff moves individual sessions between
// backends without losing a step of their log.
//
// The paper's determinism results carry the whole design: a session's
// state and log are a pure function of its database and input sequence, so
// routing only has to keep one invariant — all of a session's inputs reach
// the same backend, in order — and rebalancing is "ship the input log,
// replay it" (see PAPERS.md on relational transducers for declarative
// networking).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes plus an explicit pin
// table for handed-off sessions. Ownership — hashed or pinned — ignores
// health: a key whose owner is down resolves with BackendDownError (503
// at the router) rather than re-homing to the ring successor. A silent
// re-home would let a client re-open the session ID on the wrong backend
// and fork its log the moment the owner recovered with its WAL intact;
// the session's state lives on the owner and nowhere else. Down backends
// are avoided only when *placing* new sessions, and that happens upstream
// (the router re-rolls minted IDs), never by bending the ring.
//
// All methods are safe for concurrent use.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	members map[string]*member
	points  []point           // vnode positions of all members, sorted by hash
	pins    map[string]string // sessionID → backend, set by handoff
	gen     uint64            // bumped on every membership/health/pin change
}

type member struct {
	addr string
	up   bool
}

type point struct {
	h    uint64
	addr string
}

// NewRing creates a ring with the given virtual-node count per backend
// (≥128 keeps key distribution within a few percent of uniform; see the
// property tests).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	return &Ring{
		vnodes:  vnodes,
		members: make(map[string]*member),
		pins:    make(map[string]string),
	}
}

// hash64 positions keys and vnodes on the ring. SHA-256 (truncated) is
// used for its distribution quality, not for security: FNV-style hashes
// cluster noticeably on the structured "addr#i" vnode labels.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a backend (initially up). Adding an existing backend is a
// no-op.
func (r *Ring) Add(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[addr]; ok {
		return
	}
	r.members[addr] = &member{addr: addr, up: true}
	r.rebuild()
}

// Remove deletes a backend and any pins that point at it.
func (r *Ring) Remove(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[addr]; !ok {
		return
	}
	delete(r.members, addr)
	for sid, target := range r.pins {
		if target == addr {
			delete(r.pins, sid)
		}
	}
	r.rebuild()
}

// SetUp flips a backend's health. Down backends keep their membership,
// their pins, and their hashed keys — those keys become unroutable, they
// do not move.
func (r *Ring) SetUp(addr string, up bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[addr]
	if !ok || m.up == up {
		return
	}
	m.up = up
	r.gen++
}

// Up reports whether addr is a member and currently up.
func (r *Ring) Up(addr string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[addr]
	return ok && m.up
}

// Pin routes key to addr regardless of the hash, recording a completed
// handoff. Pinning to "" clears the pin.
func (r *Ring) Pin(key, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if addr == "" {
		delete(r.pins, key)
	} else {
		r.pins[key] = addr
	}
	r.gen++
}

// rebuild recomputes the sorted vnode positions of the members. All
// members are positioned regardless of health — ownership is
// health-independent (see Lookup) — so points change only on Add/Remove,
// and positions depend only on (addr, vnode index): removing a member
// never moves the remaining members' points, the minimal-disruption
// invariant.
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for addr := range r.members {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, point{h: hash64(fmt.Sprintf("%s#%d", addr, i)), addr: addr})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
	r.gen++
}

// ErrNoBackends is returned by Lookup when the ring has no members.
var ErrNoBackends = fmt.Errorf("cluster: no backends available")

// BackendDownError reports a key whose owning backend — hashed or pinned —
// is down: the key cannot be served elsewhere because its session state
// lives there and nowhere else.
type BackendDownError struct{ Addr string }

func (err *BackendDownError) Error() string {
	return fmt.Sprintf("cluster: backend %s is down", err.Addr)
}

// Lookup resolves key to its owning backend — the pin target if the key
// was handed off, otherwise the first vnode clockwise from hash(key) —
// and reports BackendDownError when that owner is down. Ownership never
// depends on health: a down owner makes its keys temporarily unroutable,
// it does not re-home them.
func (r *Ring) Lookup(key string) (string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addr, pinned := r.pins[key]
	if !pinned {
		if len(r.points) == 0 {
			return "", ErrNoBackends
		}
		addr = r.owner(key)
	}
	if m, ok := r.members[addr]; ok && m.up {
		return addr, nil
	}
	return addr, &BackendDownError{Addr: addr}
}

// owner is the hash-position lookup; callers hold r.mu and have checked
// that points is non-empty.
func (r *Ring) owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// HashOwner returns key's owner by hash position alone, ignoring pins and
// health (false when the ring is empty). Pin recovery uses it to spot
// sessions living off their hash position after a router restart.
func (r *Ring) HashOwner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.owner(key), true
}

// Members returns all backend addresses, sorted, regardless of health.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addrs := make([]string, 0, len(r.members))
	for addr := range r.members {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	return addrs
}

// UpMembers returns the addresses currently up, sorted.
func (r *Ring) UpMembers() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addrs := make([]string, 0, len(r.members))
	for addr, m := range r.members {
		if m.up {
			addrs = append(addrs, addr)
		}
	}
	sort.Strings(addrs)
	return addrs
}

// MemberInfo describes one backend in the ring snapshot.
type MemberInfo struct {
	Addr string `json:"addr"`
	Up   bool   `json:"up"`
	// Share is the fraction of the hash space owned by this backend.
	// Ownership ignores health: a down member keeps its share — those
	// keys are unroutable (503), not re-homed.
	Share float64 `json:"keyspace_share"`
	// Pins counts sessions explicitly pinned here by handoff.
	Pins int `json:"pinned_sessions"`
}

// Info is the ring snapshot served at GET /debug/shards.
type Info struct {
	Vnodes     int               `json:"vnodes"`
	Generation uint64            `json:"generation"`
	Members    []MemberInfo      `json:"members"`
	Pins       map[string]string `json:"pins,omitempty"`
}

// Snapshot captures the live ring: membership, health, per-backend
// keyspace share (from vnode arc lengths), and the pin table.
func (r *Ring) Snapshot() Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	share := make(map[string]float64)
	if n := len(r.points); n > 0 {
		const whole = float64(1<<63) * 2 // 2^64 as float
		for i, p := range r.points {
			// The arc ending at p.h (owned by p) starts at the previous
			// point; the first point also owns the wrap-around arc.
			var arc uint64
			if i == 0 {
				arc = r.points[0].h + (^r.points[n-1].h + 1)
			} else {
				arc = p.h - r.points[i-1].h
			}
			share[p.addr] += float64(arc) / whole
		}
	}
	pinCount := make(map[string]int)
	for _, addr := range r.pins {
		pinCount[addr]++
	}
	info := Info{Vnodes: r.vnodes, Generation: r.gen}
	addrs := make([]string, 0, len(r.members))
	for addr := range r.members {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		info.Members = append(info.Members, MemberInfo{
			Addr:  addr,
			Up:    r.members[addr].up,
			Share: share[addr],
			Pins:  pinCount[addr],
		})
	}
	if len(r.pins) > 0 {
		info.Pins = make(map[string]string, len(r.pins))
		for k, v := range r.pins {
			info.Pins[k] = v
		}
	}
	return info
}
