package cluster

import (
	"fmt"
	"net/http"
	"net/url"
	"testing"
)

// TestRouterVerifyAndProgress: the live verification plane answers through
// the router — /verify and /progress route to the session's owner like any
// other session request, and keep answering after the session is handed
// off to a pinned (non-ring) owner.
func TestRouterVerifyAndProgress(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := "live-1"
	if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil); st != http.StatusCreated {
		t.Fatalf("open: status %d", st)
	}
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("newsweek"), nil); st != http.StatusOK {
		t.Fatal("input failed")
	}

	type goalAnswer struct {
		Reachable bool   `json:"reachable"`
		Cached    bool   `json:"cached"`
		Goal      string `json:"goal"`
	}
	verifyURL := tc.front.URL + "/sessions/" + id + "/verify?goal=" + url.QueryEscape("deliver(X)")
	var goal goalAnswer
	if st := getJSON(t, verifyURL, &goal); st != http.StatusOK {
		t.Fatalf("verify via router: status %d", st)
	}
	if !goal.Reachable {
		t.Fatalf("deliver(X) should be reachable after one order: %+v", goal)
	}

	var temp struct {
		Holds bool `json:"holds"`
	}
	temporalURL := tc.front.URL + "/sessions/" + id + "/verify?temporal=" + url.QueryEscape("deliver(X) => past-order(X)")
	if st := getJSON(t, temporalURL, &temp); st != http.StatusOK || !temp.Holds {
		t.Fatalf("temporal via router: status %d, holds=%v", st, temp.Holds)
	}

	type progressAnswer struct {
		Suggestions []struct {
			Input    string `json:"input"`
			Distance int    `json:"distance"`
		} `json:"suggestions"`
	}
	progURL := tc.front.URL + "/sessions/" + id + "/progress?goal=" + url.QueryEscape("deliver(X)")
	var prog progressAnswer
	if st := getJSON(t, progURL, &prog); st != http.StatusOK {
		t.Fatalf("progress via router: status %d", st)
	}
	wantNext := func(p progressAnswer, input string) {
		t.Helper()
		for _, s := range p.Suggestions {
			if s.Distance == 1 && s.Input == input {
				return
			}
		}
		t.Fatalf("no distance-1 suggestion %q in %+v", input, p.Suggestions)
	}
	wantNext(prog, "pay(newsweek, 845)")

	// Hand the session off to a non-ring owner: the pin must carry the
	// verification plane with it.
	from, err := tc.router.Ring().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	var to string
	for _, b := range tc.backends {
		if b.URL != from {
			to = b.URL
			break
		}
	}
	var res HandoffResult
	if st := postJSON(t, fmt.Sprintf("%s/admin/handoff?session=%s&to=%s", tc.front.URL, id, to), nil, &res); st != http.StatusOK {
		t.Fatalf("handoff: status %d", st)
	}

	// The prefix survived the move: verification answers from the same
	// cumulated state, now computed by the new owner.
	goal = goalAnswer{}
	if st := getJSON(t, verifyURL, &goal); st != http.StatusOK || !goal.Reachable {
		t.Fatalf("verify after handoff: status %d, %+v", st, goal)
	}
	if st := getJSON(t, to+"/sessions/"+id+"/verify?goal="+url.QueryEscape("deliver(X)"), nil); st != http.StatusOK {
		t.Fatalf("verify direct on new owner: status %d", st)
	}

	// Step on the pinned owner, then confirm progress reflects the new
	// prefix through the router: time was ordered after the handoff, so its
	// payment is now a distance-1 suggestion too.
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("time"), nil); st != http.StatusOK {
		t.Fatal("step after handoff failed")
	}
	prog = progressAnswer{}
	if st := getJSON(t, progURL, &prog); st != http.StatusOK {
		t.Fatalf("progress after handoff: status %d", st)
	}
	wantNext(prog, "pay(newsweek, 845)")
	wantNext(prog, "pay(time, 855)")

	// Malformed queries surface the backend's 400 through the router.
	if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/verify?goal="+url.QueryEscape("deliver("), nil); st != http.StatusBadRequest {
		t.Fatalf("bad goal via router: status %d, want 400", st)
	}
}
