package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/session"
)

// testCluster is 3 in-memory backends behind one router, all in-process.
type testCluster struct {
	engines  []*session.Engine
	backends []*httptest.Server
	router   *Router
	front    *httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		e, err := session.NewEngine(session.Config{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(session.Handler(e))
		tc.engines = append(tc.engines, e)
		tc.backends = append(tc.backends, srv)
	}
	addrs := make([]string, n)
	for i, b := range tc.backends {
		addrs[i] = b.URL
	}
	rt, err := NewRouter(RouterConfig{
		Backends: addrs,
		Vnodes:   128,
		Health:   HealthConfig{Interval: 20 * time.Millisecond, Timeout: 200 * time.Millisecond, FailAfter: 2, MaxBackoff: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		rt.Close()
		for i := range tc.backends {
			tc.backends[i].Close()
			tc.engines[i].Shutdown()
		}
	})
	return tc
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func orderInput(item string) map[string]any {
	return map[string]any{"input": map[string][][]string{"order": {{item}}}}
}

// TestRouterRoutesConsistently: a session opened through the router lands
// on exactly one backend, and every subsequent request reaches it.
func TestRouterRoutesConsistently(t *testing.T) {
	tc := newTestCluster(t, 3)
	const sessions = 24
	for i := 0; i < sessions; i++ {
		id := fmt.Sprintf("route-%02d", i)
		var info session.Info
		if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, &info); st != http.StatusCreated {
			t.Fatalf("open %s: status %d", id, st)
		}
		var res session.StepResult
		if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("newsweek"), &res); st != http.StatusOK {
			t.Fatalf("input %s: status %d", id, st)
		}
		if res.Seq != 1 {
			t.Fatalf("input %s: seq %d", id, res.Seq)
		}
		// The session exists on exactly one backend — the ring's choice.
		want, err := tc.router.Ring().Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		homes := 0
		for _, b := range tc.backends {
			st := getJSON(t, b.URL+"/sessions/"+id, nil)
			if st == http.StatusOK {
				homes++
				if b.URL != want {
					t.Fatalf("%s lives on %s, ring says %s", id, b.URL, want)
				}
			}
		}
		if homes != 1 {
			t.Fatalf("%s has %d homes", id, homes)
		}
	}

	// The merged list sees every session exactly once.
	var list struct {
		Sessions []session.Info `json:"sessions"`
	}
	if st := getJSON(t, tc.front.URL+"/sessions", &list); st != http.StatusOK {
		t.Fatalf("list: status %d", st)
	}
	if len(list.Sessions) != sessions {
		t.Fatalf("merged list has %d sessions, want %d", len(list.Sessions), sessions)
	}
}

// TestRouterAssignsID: POST /sessions without an ID still routes — the
// router must mint the ID itself to know the owner.
func TestRouterAssignsID(t *testing.T) {
	tc := newTestCluster(t, 3)
	var info session.Info
	if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"model": "short"}, &info); st != http.StatusCreated {
		t.Fatalf("open: status %d", st)
	}
	if info.ID == "" {
		t.Fatal("router did not assign an ID")
	}
	if st := postJSON(t, tc.front.URL+"/sessions/"+info.ID+"/input", orderInput("time"), nil); st != http.StatusOK {
		t.Fatalf("input on assigned ID: status %d", st)
	}
}

// TestRouterHandoff moves a session between backends mid-run and checks
// the log through the router is unbroken, the ring is pinned, and the
// session keeps stepping on the new owner.
func TestRouterHandoff(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := "handoff-1"
	postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil)
	postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("newsweek"), nil)
	var before session.LogResult
	getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &before)

	from, err := tc.router.Ring().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	var to string
	for _, b := range tc.backends {
		if b.URL != from {
			to = b.URL
			break
		}
	}

	var res HandoffResult
	url := fmt.Sprintf("%s/admin/handoff?session=%s&to=%s", tc.front.URL, id, to)
	if st := postJSON(t, url, nil, &res); st != http.StatusOK {
		t.Fatalf("handoff: status %d", st)
	}
	if res.From != from || res.To != to || res.Steps != 1 {
		t.Fatalf("handoff result %+v", res)
	}

	// Ring reflects the move.
	var shards Info
	getJSON(t, tc.front.URL+"/debug/shards", &shards)
	if shards.Pins[id] != to {
		t.Fatalf("pin missing from /debug/shards: %v", shards.Pins)
	}

	// Gone at the source, serving at the target, log intact via router.
	if st := getJSON(t, from+"/sessions/"+id, nil); st != http.StatusNotFound {
		t.Fatalf("source still has the session: status %d", st)
	}
	var after session.LogResult
	if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &after); st != http.StatusOK {
		t.Fatalf("log after handoff: status %d", st)
	}
	if after.Steps != before.Steps || !after.Log.Equal(before.Log) {
		t.Fatalf("handoff changed the log:\n got %s\nwant %s", after.Log, before.Log)
	}
	var step session.StepResult
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("time"), &step); st != http.StatusOK || step.Seq != 2 {
		t.Fatalf("step after handoff: status %d, %+v", st, step)
	}

	// Handing off to the current owner is a no-op.
	if st := postJSON(t, fmt.Sprintf("%s/admin/handoff?session=%s&to=%s", tc.front.URL, id, to), nil, &res); st != http.StatusOK {
		t.Fatalf("no-op handoff: status %d", st)
	}

	// Unknown target is refused.
	if st := postJSON(t, fmt.Sprintf("%s/admin/handoff?session=%s&to=%s", tc.front.URL, id, "http://nope:1"), nil, nil); st != http.StatusBadGateway {
		t.Fatalf("handoff to unknown backend: status %d", st)
	}
}

// TestRouterFailoverMarksDown kills one backend and checks the router
// marks it down, refuses its sessions with 503 (never re-homing them to a
// survivor), and keeps serving sessions on the survivors at their
// unchanged owners.
func TestRouterFailoverMarksDown(t *testing.T) {
	tc := newTestCluster(t, 3)
	// Open enough sessions that every backend owns some.
	ids := make([]string, 30)
	owner := make(map[string]string)
	for i := range ids {
		ids[i] = fmt.Sprintf("fo-%02d", i)
		postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": ids[i], "model": "short"}, nil)
		addr, err := tc.router.Ring().Lookup(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		owner[ids[i]] = addr
	}

	victim := tc.backends[0].URL
	tc.backends[0].Close() // SIGKILL equivalent for an in-process backend

	// The health checker notices within a few probe intervals.
	deadline := time.Now().Add(5 * time.Second)
	for tc.router.Ring().Up(victim) {
		if time.Now().After(deadline) {
			t.Fatal("router never marked the dead backend down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var shards Info
	getJSON(t, tc.front.URL+"/debug/shards", &shards)
	for _, m := range shards.Members {
		if m.Addr == victim && m.Up {
			t.Fatal("/debug/shards still shows the dead backend up")
		}
	}

	survivorsServed, deadRefused := 0, 0
	for _, id := range ids {
		st := getJSON(t, tc.front.URL+"/sessions/"+id, nil)
		if owner[id] == victim {
			// Strict routing: the victim still owns the key, so the router
			// answers 503 — it must not re-home the session to a survivor,
			// where a re-open would fork its log.
			if st != http.StatusServiceUnavailable {
				t.Fatalf("session %s on the dead backend: status %d, want 503", id, st)
			}
			if addr, err := tc.router.Ring().Lookup(id); addr != victim || err == nil {
				t.Fatalf("dead session %s re-homed %s → %s (err %v)", id, victim, addr, err)
			}
			deadRefused++
			continue
		}
		if st != http.StatusOK {
			t.Fatalf("surviving session %s: status %d", id, st)
		}
		if addr, _ := tc.router.Ring().Lookup(id); addr != owner[id] {
			t.Fatalf("surviving session %s remapped %s → %s", id, owner[id], addr)
		}
		survivorsServed++
	}
	if survivorsServed == 0 || deadRefused == 0 {
		t.Fatalf("vacuous failover test: %d survivors, %d dead", survivorsServed, deadRefused)
	}
}

// TestRouterNoRehomeWhileOwnerDown pins the fork hazard directly: while a
// session's owner is down, re-opening the same ID through the router must
// be refused (503), not quietly created on the hash successor — that
// second copy would fork the log when the owner recovered. Placement of
// *new* (router-minted) IDs keeps working, landing only on up backends.
func TestRouterNoRehomeWhileOwnerDown(t *testing.T) {
	tc := newTestCluster(t, 3)
	victim := tc.backends[0].URL
	// Find an ID owned by the victim.
	var id string
	for i := 0; ; i++ {
		id = fmt.Sprintf("rehome-%04d", i)
		if addr, err := tc.router.Ring().Lookup(id); err == nil && addr == victim {
			break
		}
	}
	if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil); st != http.StatusCreated {
		t.Fatalf("open: status %d", st)
	}
	postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("newsweek"), nil)

	tc.backends[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for tc.router.Ring().Up(victim) {
		if time.Now().After(deadline) {
			t.Fatal("router never marked the dead backend down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Re-open of the same ID and inputs to it are both 503 — never served
	// elsewhere, never created elsewhere.
	if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("re-open of a down owner's session: status %d, want 503", st)
	}
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("time"), nil); st != http.StatusServiceUnavailable {
		t.Fatalf("input to a down owner's session: status %d, want 503", st)
	}
	for _, b := range tc.backends[1:] {
		if st := getJSON(t, b.URL+"/sessions/"+id, nil); st != http.StatusNotFound {
			t.Fatalf("session %s leaked onto survivor %s: status %d", id, b.URL, st)
		}
	}

	// Minted IDs are re-rolled onto up backends.
	for i := 0; i < 10; i++ {
		var info session.Info
		if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"model": "short"}, &info); st != http.StatusCreated {
			t.Fatalf("open with minted ID: status %d", st)
		}
		addr, err := tc.router.Ring().Lookup(info.ID)
		if err != nil || addr == victim {
			t.Fatalf("minted ID %s placed on %s (err %v)", info.ID, addr, err)
		}
	}
}

// TestRouterPinRecovery restarts the router (new Router over the same
// backends) after a handoff and checks the pin is reconstructed from the
// backends' session lists — without it the handed-off session would
// hash-route to its old home's WAL close record: permanent 404s.
func TestRouterPinRecovery(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := "recover-1"
	postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil)
	postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("newsweek"), nil)

	from, err := tc.router.Ring().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	var to string
	for _, b := range tc.backends {
		if b.URL != from {
			to = b.URL
			break
		}
	}
	if st := postJSON(t, fmt.Sprintf("%s/admin/handoff?session=%s&to=%s", tc.front.URL, id, to), nil, nil); st != http.StatusOK {
		t.Fatalf("handoff: status %d", st)
	}

	// "Restart": a fresh router over the same backends, no shared state.
	addrs := make([]string, len(tc.backends))
	for i, b := range tc.backends {
		addrs[i] = b.URL
	}
	rt2, err := NewRouter(RouterConfig{Backends: addrs, Vnodes: 128,
		Health: HealthConfig{Interval: 20 * time.Millisecond, Timeout: 200 * time.Millisecond, FailAfter: 2, MaxBackoff: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	front2 := httptest.NewServer(rt2.Handler())
	defer front2.Close()

	if addr, err := rt2.Ring().Lookup(id); err != nil || addr != to {
		t.Fatalf("restarted router routes %s to %s (%v), want pin to %s", id, addr, err, to)
	}
	var res session.StepResult
	if st := postJSON(t, front2.URL+"/sessions/"+id+"/input", orderInput("time"), &res); st != http.StatusOK || res.Seq != 2 {
		t.Fatalf("step through restarted router: status %d, %+v", st, res)
	}
}

// TestRouterConcurrentHandoffs races two handoffs of one session to two
// different targets. Serialization must leave exactly one live copy, a
// coherent pin, and an unbroken log — no orphan replica on the loser's
// target.
func TestRouterConcurrentHandoffs(t *testing.T) {
	tc := newTestCluster(t, 3)
	id := "race-1"
	postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil)
	postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("newsweek"), nil)

	from, err := tc.router.Ring().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	var targets []string
	for _, b := range tc.backends {
		if b.URL != from {
			targets = append(targets, b.URL)
		}
	}
	done := make(chan struct{})
	for _, to := range targets {
		go func(to string) {
			defer func() { done <- struct{}{} }()
			// Either outcome (moved, or no-op because the other won) is
			// fine; what matters is the invariant below. Raw http.Post —
			// t.Fatal must not run off the test goroutine.
			resp, err := http.Post(fmt.Sprintf("%s/admin/handoff?session=%s&to=%s", tc.front.URL, id, to), "application/json", bytes.NewReader(nil))
			if err == nil {
				resp.Body.Close()
			}
		}(to)
	}
	<-done
	<-done

	homes := 0
	for _, b := range tc.backends {
		if getJSON(t, b.URL+"/sessions/"+id, nil) == http.StatusOK {
			homes++
		}
	}
	if homes != 1 {
		t.Fatalf("session has %d live copies after racing handoffs, want exactly 1", homes)
	}
	var res session.StepResult
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("time"), &res); st != http.StatusOK || res.Seq != 2 {
		t.Fatalf("step after racing handoffs: status %d, %+v", st, res)
	}
}

// TestRouterListPartial: a backend that answers GET /sessions with non-2xx
// is counted as a backend error and flags the merged list as partial,
// instead of being silently omitted.
func TestRouterListPartial(t *testing.T) {
	e, err := session.NewEngine(session.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	good := httptest.NewServer(session.Handler(e))
	defer good.Close()
	// Healthy to the prober, broken on the list path.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
			return
		}
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "boom"})
	}))
	defer bad.Close()

	rt, err := NewRouter(RouterConfig{Backends: []string{good.URL, bad.URL}, Vnodes: 128,
		Health: HealthConfig{Interval: 20 * time.Millisecond, Timeout: 200 * time.Millisecond, FailAfter: 2, MaxBackoff: 100 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	if _, err := e.Open(&session.OpenRequest{ID: "p-1", Model: "short"}); err != nil {
		t.Fatal(err)
	}
	errsBefore := rt.m.backendErrors.Load()
	var list struct {
		Sessions []session.Info `json:"sessions"`
		Partial  bool           `json:"partial"`
	}
	if st := getJSON(t, front.URL+"/sessions", &list); st != http.StatusOK {
		t.Fatalf("list: status %d", st)
	}
	if !list.Partial {
		t.Fatal("merged list over a failing backend not flagged partial")
	}
	if len(list.Sessions) != 1 || list.Sessions[0].ID != "p-1" {
		t.Fatalf("merged list: %+v", list.Sessions)
	}
	if rt.m.backendErrors.Load() == errsBefore {
		t.Fatal("failing list backend did not count as a backend error")
	}
}
