package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/session"
)

// Handoff moves one session between backends by deterministic replay:
//
//  1. export: the source freezes the session (draining it — further inputs
//     get 503 there) and returns its input history,
//  2. replay: the router opens the same session on the target and feeds it
//     the history through the ordinary input path, so the target's own WAL
//     records every step,
//  3. verify: the replayed step count must equal the exported one,
//  4. retire: the source forgets its copy (logged, so replay does not
//     resurrect it), and the ring pins the session to the target.
//
// Determinism (state and log are a function of database + inputs alone)
// makes step 2 reconstruct the log bit-for-bit, and the freeze makes the
// move exactly-once at the log level: no input can land on both copies.
// On any failure before step 4 the target copy is deleted and the source
// is unfrozen — the session never stops being served by exactly one owner.

// HandoffResult reports a completed handoff.
type HandoffResult struct {
	Session string `json:"session"`
	From    string `json:"from"`
	To      string `json:"to"`
	Steps   int    `json:"steps"`
}

// handleHandoff serves POST /admin/handoff?session=ID&to=BACKEND.
func (rt *Router) handleHandoff(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	to := r.URL.Query().Get("to")
	if id == "" || to == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "handoff needs ?session= and ?to="})
		return
	}
	res, err := rt.Handoff(id, to)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// lockSession serializes handoffs per session ID. Without it, two
// concurrent handoffs of the same session to different targets both
// export (freeze is idempotent) and both replay; the loser's Forget finds
// the source already retired, but its replayed copy would survive as a
// live, unfrozen orphan replica on its target. Serialized, the second
// handoff's Lookup sees the first one's pin and either no-ops or performs
// a clean second move from the new owner.
func (rt *Router) lockSession(id string) (unlock func()) {
	for {
		rt.handoffMu.Lock()
		busy, inFlight := rt.handoffBusy[id]
		if !inFlight {
			done := make(chan struct{})
			rt.handoffBusy[id] = done
			rt.handoffMu.Unlock()
			return func() {
				rt.handoffMu.Lock()
				delete(rt.handoffBusy, id)
				rt.handoffMu.Unlock()
				close(done)
			}
		}
		rt.handoffMu.Unlock()
		<-busy
	}
}

// Handoff drains session id on its current owner, replays it on backend
// to, and flips the ring entry. Handing a session to the backend that
// already owns it is a no-op. Handoffs of the same session are serialized;
// a concurrent caller blocks until the first move completes, then acts on
// the post-move owner.
func (rt *Router) Handoff(id, to string) (*HandoffResult, error) {
	defer rt.lockSession(id)()
	known := false
	for _, m := range rt.ring.Members() {
		if m == to {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("handoff: unknown backend %s", to)
	}
	if !rt.ring.Up(to) {
		return nil, &BackendDownError{Addr: to}
	}
	from, err := rt.ring.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("handoff: %w", err)
	}
	if from == to {
		return &HandoffResult{Session: id, From: from, To: to}, nil
	}

	// 1. Freeze + export on the source.
	var exp session.Export
	if err := rt.postJSON(from+"/admin/sessions/"+id+"/export", nil, &exp); err != nil {
		return nil, fmt.Errorf("handoff: export from %s: %w", from, err)
	}

	// 2–3. Replay on the target; on any failure, roll back to the source.
	if err := rt.replay(to, &exp); err != nil {
		rt.deleteSession(to, id)
		if uerr := rt.postJSON(from+"/admin/sessions/"+id+"/unfreeze", nil, nil); uerr != nil {
			return nil, fmt.Errorf("handoff: replay on %s failed (%v) AND unfreeze on %s failed (%v): session %s needs manual thaw", to, err, from, uerr, id)
		}
		return nil, fmt.Errorf("handoff: replay on %s: %w (source unfrozen)", to, err)
	}

	// 4. Retire the source copy and flip the ring.
	if err := rt.postJSON(from+"/admin/sessions/"+id+"/forget", nil, nil); err != nil {
		var nf *notFoundError
		if errors.As(err, &nf) {
			// The session vanished from the source under our freeze —
			// someone else retired it. Our replayed copy would be a second
			// live replica, so delete it and leave the ring alone.
			rt.deleteSession(to, id)
			return nil, fmt.Errorf("handoff: session %s disappeared from %s mid-handoff (replica on %s deleted): %w", id, from, to, err)
		}
		// The target already serves the session; routing there anyway is
		// correct, the frozen source copy is inert. Report but proceed.
		rt.ring.Pin(id, to)
		rt.m.handoffs.Add(1)
		return &HandoffResult{Session: id, From: from, To: to, Steps: exp.Steps},
			fmt.Errorf("handoff: forget on %s: %w (ring flipped; frozen source copy remains)", from, err)
	}
	rt.ring.Pin(id, to)
	rt.m.handoffs.Add(1)
	return &HandoffResult{Session: id, From: from, To: to, Steps: exp.Steps}, nil
}

// replay reconstructs the exported session on backend addr through the
// ordinary open/input path, retrying individual steps on 429 backpressure.
func (rt *Router) replay(addr string, exp *session.Export) error {
	open := map[string]any{"id": exp.ID, "mode": exp.Mode, "db": exp.DB}
	if exp.Model != "" {
		open["model"] = exp.Model
	}
	if exp.Src != "" {
		open["src"] = exp.Src
	}
	// Open goes through the same bounded shard mailbox as inputs, so a
	// busy target can 429 it too — and a busy target is not a failed
	// handoff.
	if err := rt.postJSONRetry(addr+"/sessions", open, nil); err != nil {
		return fmt.Errorf("open: %w", err)
	}
	for i, in := range exp.Inputs {
		var res session.StepResult
		if err := rt.postJSONRetry(addr+"/sessions/"+exp.ID+"/input", map[string]any{"input": in}, &res); err != nil {
			return fmt.Errorf("replay step %d: %w", i+1, err)
		}
		if res.Seq != i+1 {
			return fmt.Errorf("replay step %d: target reports seq %d", i+1, res.Seq)
		}
	}
	if len(exp.Inputs) != exp.Steps {
		return fmt.Errorf("export is inconsistent: %d inputs for %d steps", len(exp.Inputs), exp.Steps)
	}
	return nil
}

// deleteSession best-effort removes a partially replayed session.
func (rt *Router) deleteSession(addr, id string) {
	req, err := http.NewRequest(http.MethodDelete, addr+"/sessions/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := rt.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// retryableError marks a transient backend refusal (429) worth retrying.
type retryableError struct{ status int }

func (err *retryableError) Error() string { return fmt.Sprintf("backend status %d", err.status) }

// notFoundError marks a 404: the resource is gone at the backend, not a
// transport or server failure. Forget branches on it.
type notFoundError struct{ url string }

func (err *notFoundError) Error() string { return fmt.Sprintf("%s: not found", err.url) }

// postJSONRetry is postJSON with exponential backoff while the backend
// answers 429 backpressure.
func (rt *Router) postJSONRetry(url string, body any, out any) error {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		err = rt.postJSON(url, body, out)
		var retry *retryableError
		if err == nil || !errors.As(err, &retry) {
			return err
		}
		time.Sleep(time.Duration(50<<attempt) * time.Millisecond)
	}
	return err
}

// postJSON posts body (nil for empty) to url and decodes the 2xx response
// into out (when non-nil). Non-2xx responses become errors carrying the
// backend's error message; 429 is marked retryable, 404 not-found.
func (rt *Router) postJSON(url string, body any, out any) error {
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	resp, err := rt.client.Post(url, "application/json", rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			return fmt.Errorf("%s: %w", e.Error, &retryableError{status: resp.StatusCode})
		case http.StatusNotFound:
			return fmt.Errorf("%s: %w", e.Error, &notFoundError{url: url})
		}
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
