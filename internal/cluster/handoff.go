package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/compose"
	"repro/internal/session"
	"repro/internal/wire"
)

// Handoff moves one session between backends. Two transports share one
// protocol skeleton (freeze → move → retire → pin):
//
// Replay mode:
//
//  1. export: the source freezes the session (draining it — further inputs
//     get 503 there) and returns its input history,
//  2. replay: the router opens the same session on the target and feeds it
//     the history through the ordinary input path, so the target's own WAL
//     records every step,
//  3. verify: the replayed step count must equal the exported one,
//  4. retire: the source forgets its copy (logged, so replay does not
//     resurrect it), and the ring pins the session to the target.
//
// Ship mode (the default) replaces steps 1–3 with a single round trip per
// side: the source freezes and returns its full state image plus a sha-256
// digest of its log (export-state), and the target installs the image,
// recomputing the digest from the restored log and refusing on mismatch.
// Cost is O(state) instead of O(steps) — a 1k-step session moves in two
// requests, not a thousand — while the digest check pins exactly the
// byte-identity that replay guarantees by construction. Any ship failure
// (digest mismatch, target without the endpoint, transport error) falls
// back to replay on the same frozen source; export and export-state are
// idempotent on a frozen session, so mixing them is safe.
//
// Determinism (state and log are a function of database + inputs alone)
// makes replay reconstruct the log bit-for-bit, and the freeze makes the
// move exactly-once at the log level: no input can land on both copies.
// On any failure before retire the target copy is deleted and the source
// is unfrozen — the session never stops being served by exactly one owner.

// Handoff transports.
const (
	HandoffShip   = "ship"   // move the state image + log digest
	HandoffReplay = "replay" // re-step the exported input history
)

// HandoffResult reports a completed handoff.
type HandoffResult struct {
	Session string `json:"session"`
	From    string `json:"from"`
	To      string `json:"to"`
	Steps   int    `json:"steps"`
	// Mode is the transport that actually moved the session; Fallback is
	// set when ship was attempted first and replay finished the job.
	Mode     string `json:"mode,omitempty"`
	Fallback bool   `json:"fallback,omitempty"`
}

// handleHandoff serves POST /admin/handoff?session=ID&to=BACKEND[&mode=ship|replay].
func (rt *Router) handleHandoff(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	to := r.URL.Query().Get("to")
	if id == "" || to == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "handoff needs ?session= and ?to="})
		return
	}
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = rt.handoffMode
	}
	if mode != HandoffShip && mode != HandoffReplay {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("unknown handoff mode %q", mode)})
		return
	}
	res, err := rt.HandoffWith(id, to, mode)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// lockSession serializes handoffs per session ID. Without it, two
// concurrent handoffs of the same session to different targets both
// export (freeze is idempotent) and both replay; the loser's Forget finds
// the source already retired, but its replayed copy would survive as a
// live, unfrozen orphan replica on its target. Serialized, the second
// handoff's Lookup sees the first one's pin and either no-ops or performs
// a clean second move from the new owner.
func (rt *Router) lockSession(id string) (unlock func()) {
	for {
		rt.handoffMu.Lock()
		busy, inFlight := rt.handoffBusy[id]
		if !inFlight {
			done := make(chan struct{})
			rt.handoffBusy[id] = done
			rt.handoffMu.Unlock()
			return func() {
				rt.handoffMu.Lock()
				delete(rt.handoffBusy, id)
				rt.handoffMu.Unlock()
				close(done)
			}
		}
		rt.handoffMu.Unlock()
		<-busy
	}
}

// Handoff drains session id on its current owner, moves it to backend to
// using the router's default transport, and flips the ring entry.
func (rt *Router) Handoff(id, to string) (*HandoffResult, error) {
	return rt.HandoffWith(id, to, rt.handoffMode)
}

// HandoffWith is Handoff with an explicit transport (HandoffShip or
// HandoffReplay). Handing a session to the backend that already owns it
// is a no-op. Handoffs of the same session are serialized; a concurrent
// caller blocks until the first move completes, then acts on the
// post-move owner.
func (rt *Router) HandoffWith(id, to, mode string) (*HandoffResult, error) {
	defer rt.lockSession(id)()
	known := false
	for _, m := range rt.ring.Members() {
		if m == to {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("handoff: unknown backend %s", to)
	}
	if !rt.ring.Up(to) {
		return nil, &BackendDownError{Addr: to}
	}
	from, err := rt.ring.Lookup(id)
	if err != nil {
		return nil, fmt.Errorf("handoff: %w", err)
	}
	if from == to {
		return &HandoffResult{Session: id, From: from, To: to}, nil
	}

	res := &HandoffResult{Session: id, From: from, To: to, Mode: mode}

	// Move the session (freezing the source as a side effect of the first
	// export). A failed ship falls back to replay against the same frozen
	// source before anything is rolled back.
	if mode == HandoffShip {
		steps, shipErr := rt.ship(from, to, id)
		if shipErr == nil {
			res.Steps = steps
		} else {
			rt.deleteSession(to, id)
			rt.m.handoffFallbacks.Add(1)
			res.Mode, res.Fallback = HandoffReplay, true
		}
	}
	if res.Mode == HandoffReplay {
		var exp session.Export
		if err := rt.postJSON(from+"/admin/sessions/"+id+"/export", nil, &exp); err != nil {
			return nil, fmt.Errorf("handoff: export from %s: %w", from, err)
		}
		if err := rt.replay(to, &exp); err != nil {
			rt.deleteSession(to, id)
			if uerr := rt.postJSON(from+"/admin/sessions/"+id+"/unfreeze", nil, nil); uerr != nil {
				return nil, fmt.Errorf("handoff: replay on %s failed (%v) AND unfreeze on %s failed (%v): session %s needs manual thaw", to, err, from, uerr, id)
			}
			return nil, fmt.Errorf("handoff: replay on %s: %w (source unfrozen)", to, err)
		}
		res.Steps = exp.Steps
	}

	// The health checker may have marked the target down while the move was
	// in flight (its prober and our transfer race freely). Pinning the
	// session to a down backend after forgetting the source would strand
	// it — and if the target really died, lose it — so re-check before the
	// point of no return and roll the move back instead.
	if !rt.ring.Up(to) {
		rt.deleteSession(to, id)
		if uerr := rt.postJSON(from+"/admin/sessions/"+id+"/unfreeze", nil, nil); uerr != nil {
			return nil, fmt.Errorf("handoff: target %s went down mid-handoff AND unfreeze on %s failed (%v): session %s needs manual thaw", to, from, uerr, id)
		}
		return nil, fmt.Errorf("handoff: target %s went down mid-handoff: %w (source unfrozen)", to, &BackendDownError{Addr: to})
	}

	// Retire the source copy and flip the ring.
	if err := rt.postJSON(from+"/admin/sessions/"+id+"/forget", nil, nil); err != nil {
		if wire.IsStatus(err, http.StatusNotFound) {
			// The session vanished from the source under our freeze —
			// someone else retired it. Our moved copy would be a second
			// live replica, so delete it and leave the ring alone.
			rt.deleteSession(to, id)
			return nil, fmt.Errorf("handoff: session %s disappeared from %s mid-handoff (replica on %s deleted): %w", id, from, to, err)
		}
		// The target already serves the session; routing there anyway is
		// correct, the frozen source copy is inert. Report but proceed.
		rt.finishHandoff(id, to, res)
		return res, fmt.Errorf("handoff: forget on %s: %w (ring flipped; frozen source copy remains)", from, err)
	}
	rt.finishHandoff(id, to, res)
	return res, nil
}

func (rt *Router) finishHandoff(id, to string, res *HandoffResult) {
	rt.ring.Pin(id, to)
	rt.m.handoffs.Add(1)
	if res.Mode == HandoffShip {
		rt.m.handoffsShipped.Add(1)
	}
}

// ship moves the session in one round trip per side: export-state on the
// source (freeze + state image + log digest), install on the target
// (restore + digest verification + an install WAL record). Returns the
// shipped session's step count. The image travels as one canonical binary
// codec record when both ends speak it; any binary-transport failure falls
// back to the JSON StateExport round trip (ExportState is idempotent on the
// frozen session, so re-exporting is safe).
func (rt *Router) ship(from, to, id string) (int, error) {
	if steps, err := rt.shipBinary(from, to, id); err == nil {
		return steps, nil
	}
	var se session.StateExport
	if err := rt.postJSON(from+"/admin/sessions/"+id+"/export-state", nil, &se); err != nil {
		return 0, fmt.Errorf("export-state from %s: %w", from, err)
	}
	if se.Image == nil {
		return 0, fmt.Errorf("export-state from %s: empty image", from)
	}
	// Install can hit the same bounded mailbox as any open, so retry 429s.
	var info session.Info
	if err := rt.postJSONRetry(to+"/admin/install", &se, &info); err != nil {
		return 0, fmt.Errorf("install on %s: %w", to, err)
	}
	if info.Steps != se.Image.Steps {
		return 0, fmt.Errorf("install on %s: reports %d steps, image has %d", to, info.Steps, se.Image.Steps)
	}
	return se.Image.Steps, nil
}

// shipBinary ships the session as one opaque binary image: the router never
// decodes it, it just moves bytes. A source that answers JSON (no binary
// support yet) or any other failure aborts the attempt; the caller retries
// over JSON. Integrity holds end to end regardless: the target decodes the
// same bytes the source encoded and verifies the log digest before the
// session goes live.
func (rt *Router) shipBinary(from, to, id string) (int, error) {
	data, binary, err := rt.client.PostBinaryNegotiate(context.Background(),
		from+"/admin/sessions/"+id+"/export-state", nil)
	if err != nil {
		return 0, fmt.Errorf("export-state from %s: %w", from, err)
	}
	if !binary {
		return 0, fmt.Errorf("export-state from %s: no binary transport", from)
	}
	// Install can hit the same bounded mailbox as any open, so retry 429s.
	var info session.Info
	if err := rt.postRetry(to+"/admin/install", "application/octet-stream", data, &info); err != nil {
		return 0, fmt.Errorf("install on %s: %w", to, err)
	}
	return info.Steps, nil
}

// replay reconstructs the exported session on backend addr through the
// ordinary open/input path, retrying individual steps on 429 backpressure.
// A network session replays the same way — open with the network spec,
// then re-feed the external inputs as joint steps; determinism recomputes
// the wire traffic and per-node logs bit-for-bit.
func (rt *Router) replay(addr string, exp *session.Export) error {
	open := map[string]any{"id": exp.ID, "mode": exp.Mode}
	switch {
	case exp.Network != nil:
		open["network"] = exp.Network
	case exp.Src != "":
		open["src"] = exp.Src
		open["db"] = exp.DB
	default:
		open["model"] = exp.Model
		open["db"] = exp.DB
	}
	// Open goes through the same bounded shard mailbox as inputs, so a
	// busy target can 429 it too — and a busy target is not a failed
	// handoff.
	if err := rt.postJSONRetry(addr+"/sessions", open, nil); err != nil {
		return fmt.Errorf("open: %w", err)
	}
	steps := len(exp.Inputs)
	if exp.Network != nil {
		steps = len(exp.NetInputs)
	}
	for i := 0; i < steps; i++ {
		body := map[string]any{}
		if exp.Network != nil {
			netin := exp.NetInputs[i]
			if netin == nil {
				netin = compose.StepInputs{}
			}
			body["inputs"] = netin
		} else {
			body["input"] = exp.Inputs[i]
		}
		var res session.StepResult
		if err := rt.postJSONRetry(addr+"/sessions/"+exp.ID+"/input", body, &res); err != nil {
			return fmt.Errorf("replay step %d: %w", i+1, err)
		}
		if res.Seq != i+1 {
			return fmt.Errorf("replay step %d: target reports seq %d", i+1, res.Seq)
		}
	}
	if steps != exp.Steps {
		return fmt.Errorf("export is inconsistent: %d inputs for %d steps", steps, exp.Steps)
	}
	return nil
}

// deleteSession best-effort removes a partially replayed session.
func (rt *Router) deleteSession(addr, id string) {
	req, err := http.NewRequest(http.MethodDelete, addr+"/sessions/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := rt.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// postJSON posts body (nil for empty) to url and decodes the 2xx response
// into out (when non-nil). Non-2xx → *wire.StatusError carrying the
// backend's error message.
func (rt *Router) postJSON(url string, body any, out any) error {
	return rt.client.PostJSON(context.Background(), url, body, out, nil)
}

// postJSONRetry is postJSON under the wire client's retry policy: 429/503
// refusals back off and retry, honoring any Retry-After hint.
func (rt *Router) postJSONRetry(url string, body any, out any) error {
	return rt.client.PostJSONRetry(context.Background(), url, body, out, nil)
}

// postRetry posts pre-encoded bytes with the same backoff for 429/503
// refusals — the binary install leg of ship.
func (rt *Router) postRetry(url, contentType string, body []byte, out any) error {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(50<<(attempt-1)) * time.Millisecond)
		}
		err = rt.client.PostBytes(context.Background(), url, contentType, body, out, nil)
		if err == nil || !wire.Retryable(err) {
			return err
		}
	}
	return err
}
