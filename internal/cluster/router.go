package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/session"
	"repro/internal/wire"
)

// RouterConfig tunes a Router.
type RouterConfig struct {
	// Backends are the spocus-server base URLs fronted by this router.
	Backends []string
	// Vnodes per backend on the consistent-hash ring (default 128).
	Vnodes int
	// Health tunes backend probing.
	Health HealthConfig
	// Client is the wire client used for proxying, probing, and handoff
	// (default: a pooled internal/wire client named "router" with a 30s
	// per-attempt timeout).
	Client *wire.Client
	// HandoffMode selects the default session transport for /admin/handoff:
	// "ship" (default) moves the source's state image + log digest in one
	// round trip, falling back to replay on any ship failure; "replay"
	// re-steps the exported input history on the target. A ?mode= query
	// parameter overrides per call.
	HandoffMode string
	// FollowerReads routes read-only session traffic (GET .../log, /verify,
	// /progress) to the owner's follower when one exists and its reported
	// replication lag is within FollowerMaxLag. Any follower trouble —
	// missing, lagging, erroring — falls back to the primary transparently.
	FollowerReads bool
	// FollowerMaxLag is the staleness bound for follower reads, in WAL
	// records behind the primary (default 0: only a fully caught-up
	// follower serves reads).
	FollowerMaxLag int64
	// AutoPromote promotes a backend's follower automatically when the
	// health checker marks it down. Off by default: a flapping backend
	// would fail its sessions over on a transient blip.
	AutoPromote bool
}

// Router fronts N spocus-server backends: it owns the consistent-hash ring
// mapping sessionID → backend, proxies the session API, health-checks
// backends, and serves handoff. See Handler for the HTTP surface.
type Router struct {
	ring           *Ring
	client         *wire.Client
	ownsClient     bool // close the client with the router iff we built it
	checker        *checker
	handoffMode    string
	followerReads  bool
	followerMaxLag int64
	m              routerMetrics

	// handoffBusy serializes handoffs per session ID (see lockSession).
	handoffMu   sync.Mutex
	handoffBusy map[string]chan struct{}

	// followerCache maps primary → discovered follower (see promote.go).
	followersMu   sync.Mutex
	followerCache map[string]followerInfo

	// inflight gauges the upstream requests currently outstanding per
	// backend — the router's own view of backend pressure, exported with
	// the rest of the router metrics.
	inflightMu sync.Mutex
	inflight   map[string]*atomic.Int64
}

// routerMetrics counts the router's data plane, exported under the expvar
// key "spocus_router".
type routerMetrics struct {
	proxied          atomic.Int64 // requests forwarded to a backend
	backendErrors    atomic.Int64 // forwards that failed at the transport
	rejected         atomic.Int64 // 429s passed through from backends
	unroutable       atomic.Int64 // requests refused: backend down / ring empty
	handoffs         atomic.Int64 // completed session handoffs
	handoffsShipped  atomic.Int64 // handoffs completed by WAL shipping (no replay)
	handoffFallbacks atomic.Int64 // ship attempts that fell back to replay
	pinsRecovered    atomic.Int64 // pins rebuilt by startup recovery
	promotions       atomic.Int64 // follower promotions completed
	followerReads    atomic.Int64 // reads served by a follower
	followerFallback atomic.Int64 // follower reads that fell back to the primary
	keyedRetries     atomic.Int64 // idempotent POSTs retried after a transport error
	batchRequests    atomic.Int64 // client-facing POST /batch requests
	batchSteps       atomic.Int64 // steps carried by those requests
	batchFanouts     atomic.Int64 // upstream sub-batch requests sent
}

func (m *routerMetrics) snapshot() map[string]int64 {
	return map[string]int64{
		"proxied_total":           m.proxied.Load(),
		"backend_errors_total":    m.backendErrors.Load(),
		"rejected_total":          m.rejected.Load(),
		"unroutable_total":        m.unroutable.Load(),
		"handoffs_total":          m.handoffs.Load(),
		"handoffs_shipped_total":  m.handoffsShipped.Load(),
		"handoff_fallbacks_total": m.handoffFallbacks.Load(),
		"pins_recovered_total":    m.pinsRecovered.Load(),
		"promotions_total":        m.promotions.Load(),
		"follower_reads_total":    m.followerReads.Load(),
		"follower_fallback_total": m.followerFallback.Load(),
		"keyed_retries_total":     m.keyedRetries.Load(),
		"batch_requests_total":    m.batchRequests.Load(),
		"batch_steps_total":       m.batchSteps.Load(),
		"batch_fanouts_total":     m.batchFanouts.Load(),
	}
}

// statsSnapshot is the expvar view: the counter set plus one in-flight
// gauge per backend ("inflight:<addr>").
func (rt *Router) statsSnapshot() map[string]int64 {
	out := rt.m.snapshot()
	rt.inflightMu.Lock()
	for addr, g := range rt.inflight {
		out["inflight:"+addr] = g.Load()
	}
	rt.inflightMu.Unlock()
	return out
}

// trackInflight bumps addr's in-flight gauge; the returned func drops it.
func (rt *Router) trackInflight(addr string) func() {
	rt.inflightMu.Lock()
	g, ok := rt.inflight[addr]
	if !ok {
		g = &atomic.Int64{}
		rt.inflight[addr] = g
	}
	rt.inflightMu.Unlock()
	g.Add(1)
	return func() { g.Add(-1) }
}

// NewRouter builds the ring from cfg.Backends (all initially up) and
// starts health checking. Call Close to stop the checker.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	client := cfg.Client
	ownsClient := false
	if client == nil {
		// The shared wire client: pooled keep-alive transport (the default
		// transport keeps only 2 idle connections per host — a router
		// funnelling hundreds of concurrent sessions into a few backends
		// would open and tear down connections constantly), counted dials
		// vs. reuse, and the data-plane retry policy for handoff.
		client = wire.New(wire.Config{Name: "router"})
		ownsClient = true
	}
	mode := cfg.HandoffMode
	if mode == "" {
		mode = HandoffShip
	}
	if mode != HandoffShip && mode != HandoffReplay {
		return nil, fmt.Errorf("cluster: unknown handoff mode %q", mode)
	}
	rt := &Router{
		ring:           NewRing(cfg.Vnodes),
		client:         client,
		ownsClient:     ownsClient,
		handoffMode:    mode,
		followerReads:  cfg.FollowerReads,
		followerMaxLag: cfg.FollowerMaxLag,
		handoffBusy:    make(map[string]chan struct{}),
		followerCache:  make(map[string]followerInfo),
		inflight:       make(map[string]*atomic.Int64),
	}
	for _, b := range cfg.Backends {
		rt.ring.Add(b)
	}
	rt.recoverPins()
	var onFlip func(string, bool)
	if cfg.AutoPromote {
		onFlip = func(addr string, up bool) {
			if !up {
				go rt.Promote(addr, false)
			}
		}
	}
	rt.checker = startChecker(rt.ring, cfg.Health, client, onFlip)
	return rt, nil
}

// recoverPins rebuilds the pin table after a router restart. Pins live
// only in router memory; without recovery a handed-off session would
// hash-route back to its old home, which has a WAL close record for it —
// permanent 404s for a session still live on its pin target. The scan
// asks every backend which sessions it holds and re-pins any session
// found off its hash position: the only way a session gets there is a
// completed handoff. Best-effort: an unreachable backend contributes
// nothing — its on-position sessions need no pin, and a handed-off
// session living there stays unroutable until a later handoff, which is
// the same 503 the pin itself would answer while it is down.
func (rt *Router) recoverPins() {
	for _, addr := range rt.ring.Members() {
		var page struct {
			Sessions []*session.Info `json:"sessions"`
		}
		if err := rt.client.GetJSON(context.Background(), addr+"/sessions", &page); err != nil {
			continue
		}
		for _, s := range page.Sessions {
			if owner, ok := rt.ring.HashOwner(s.ID); ok && owner != addr {
				rt.ring.Pin(s.ID, addr)
				rt.m.pinsRecovered.Add(1)
			}
		}
	}
}

// Ring exposes the router's ring (for tests and for serving /debug/shards).
func (rt *Router) Ring() *Ring { return rt.ring }

// Close stops health checking and releases the router-owned wire client.
// In-flight proxied requests are unaffected.
func (rt *Router) Close() {
	rt.checker.stop()
	if rt.ownsClient {
		rt.client.Close()
	}
}

// Handler serves the router's HTTP surface — the session API of
// internal/session's Handler, proxied per-session to the owning backend,
// plus the cluster plane:
//
//	GET  /debug/shards                 live ring: members, health, shares, pins
//	POST /admin/handoff?session=&to=   move one session to backend `to`
//	GET  /healthz                      router liveness
//	GET  /debug/vars                   expvar ("spocus_router" metrics)
//
// Session-scoped routes are routed by hashing the session ID; POST
// /sessions assigns an ID before routing so the created session has a home
// the moment it exists, re-rolling the minted ID until it hashes to an up
// backend (client-chosen IDs are never re-homed — a down owner is 503).
// GET /sessions fans out to all up backends and merges. GET /models and
// GET /networks are answered by any up backend. A network session routes
// like any other — one session ID, one owning backend for the whole
// network. POST /batch splits a multi-session batch by ring owner and
// fans one sub-batch per backend (see batch.go).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", rt.handleOpen)
	mux.HandleFunc("GET /sessions", rt.handleList)
	mux.HandleFunc("POST /batch", rt.handleBatch)
	mux.HandleFunc("/sessions/{id}", rt.handleSession)
	mux.HandleFunc("/sessions/{id}/{rest...}", rt.handleSession)
	for _, route := range []string{"GET /models", "GET /networks"} {
		mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			addrs := rt.ring.UpMembers()
			if len(addrs) == 0 {
				rt.refuse(w, ErrNoBackends)
				return
			}
			// Registry reads are identical on every backend; a caught-up
			// follower may answer them too and spare the primaries entirely.
			if rt.followerReads && rt.tryFollowerRead(w, r, addrs[0]) {
				return
			}
			rt.forward(w, r, addrs[0], nil)
		})
	}
	mux.HandleFunc("GET /debug/shards", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.ring.Snapshot())
	})
	mux.HandleFunc("POST /admin/handoff", rt.handleHandoff)
	mux.HandleFunc("POST /admin/promote", rt.handlePromote)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "backends_up": len(rt.ring.UpMembers())})
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	registerRouterExpvar(rt)
	return mux
}

// handleOpen assigns the session its ID (when the client did not) so it
// can be routed, then forwards the rewritten body to the owning backend.
func (rt *Router) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req session.OpenRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	var addr string
	if req.ID == "" {
		// Routing is strict — a down owner is 503, never a re-home — so
		// placement avoids down backends by re-rolling the minted ID until
		// it hashes to an up one, not by bending the ring. With u of n
		// backends up a roll succeeds with probability ≈ u/n, so 64
		// attempts fail only when essentially everything is down.
		for attempt := 0; ; attempt++ {
			req.ID = session.NewID()
			if addr, err = rt.ring.Lookup(req.ID); err == nil {
				break
			}
			if errors.Is(err, ErrNoBackends) || attempt >= 64 {
				rt.refuse(w, err)
				return
			}
		}
		if body, err = json.Marshal(&req); err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
	} else if addr, err = rt.ring.Lookup(req.ID); err != nil {
		rt.refuse(w, err)
		return
	}
	rt.forward(w, r, addr, body)
}

// handleSession routes everything under /sessions/{id} by the ID hash.
// Read-only subresources may be served by the owner's follower instead
// (see tryFollowerRead); everything else goes to the owner.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	addr, err := rt.ring.Lookup(r.PathValue("id"))
	if err != nil {
		// A keyed POST whose owner is down is worth holding on to: the
		// retry loop in forward re-resolves the owner between attempts, so
		// if a promotion re-homes the session within the window the client
		// never sees the failure.
		var down *BackendDownError
		if errors.As(err, &down) && r.Method == http.MethodPost && r.Header.Get("Idempotency-Key") != "" {
			rt.forward(w, r, down.Addr, nil)
			return
		}
		rt.refuse(w, err)
		return
	}
	if rt.followerReads && r.Method == http.MethodGet {
		switch r.PathValue("rest") {
		case "log", "verify", "progress":
			if rt.tryFollowerRead(w, r, addr) {
				return
			}
		}
	}
	rt.forward(w, r, addr, nil)
}

// tryFollowerRead serves one read from the owner's follower when the
// follower's self-reported replication lag is within the configured bound.
// It reports false — and touches nothing of the response — whenever the
// primary should answer instead: no follower, lagging, transport error, or
// any non-2xx (a 404 may just mean the session has not streamed over yet).
// The served-by header makes the data path observable in tests and curls.
func (rt *Router) tryFollowerRead(w http.ResponseWriter, r *http.Request, owner string) bool {
	fol, lag, ok := rt.followerFor(owner)
	if !ok || lag > rt.followerMaxLag {
		rt.m.followerFallback.Add(1)
		return false
	}
	url := fol + "/replica" + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		rt.m.followerFallback.Add(1)
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.m.followerFallback.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		rt.m.followerFallback.Add(1)
		return false
	}
	rt.m.followerReads.Add(1)
	rt.m.proxied.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Spocus-Served-By", fol)
	w.WriteHeader(resp.StatusCode)
	copyPooled(w, resp.Body)
	return true
}

// copyBufs pools proxy copy buffers so the hot forwarding path does not
// allocate 32KiB per response.
var copyBufs = sync.Pool{New: func() any { b := make([]byte, 32<<10); return &b }}

func copyPooled(dst io.Writer, src io.Reader) {
	bp := copyBufs.Get().(*[]byte)
	io.CopyBuffer(dst, src, *bp)
	copyBufs.Put(bp)
}

func isStatusError(err error) bool {
	var se *wire.StatusError
	return errors.As(err, &se)
}

// handleList fans GET /sessions out to every up backend and merges the
// results, sorted by session ID. A backend that cannot be listed — down,
// unreachable, non-2xx, or undecodable — makes the merge partial, flagged
// in the response so a short list is never mistaken for a complete one.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	members := rt.ring.Members()
	if len(rt.ring.UpMembers()) == 0 {
		rt.refuse(w, ErrNoBackends)
		return
	}
	var all []*session.Info
	partial := false
	for _, addr := range members {
		if !rt.ring.Up(addr) {
			partial = true
			continue
		}
		var page struct {
			Sessions []*session.Info `json:"sessions"`
		}
		if err := rt.client.GetJSON(r.Context(), addr+"/sessions", &page); err != nil {
			rt.m.backendErrors.Add(1)
			if !isStatusError(err) {
				rt.checker.markDown(addr)
			}
			partial = true
			continue
		}
		all = append(all, page.Sessions...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	out := map[string]any{"sessions": all}
	if partial {
		out["partial"] = true
	}
	writeJSON(w, http.StatusOK, out)
}

// keyedRetryAttempts bounds the transparent re-sends of an idempotent POST
// after a transport failure (backoff 100ms, 200ms, ... between attempts —
// wide enough for a mark-down plus promotion to land in between).
const keyedRetryAttempts = 5

// forward proxies one request to addr, preserving method, path, query,
// and body. A transport failure marks the backend down immediately — the
// client sees 502 now, and hashed keys remap on the next lookup.
//
// Exception: a POST carrying an Idempotency-Key is safe to re-send — the
// backend answers a duplicate from its key table instead of re-applying —
// so instead of surfacing an ambiguous 502, the router retries it
// transparently, re-resolving the session's owner between attempts. If the
// owner died and a promotion pins the session to its follower within the
// retry window, the client's request lands there and succeeds; the client
// never learns there was a failover.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, addr string, body []byte) {
	retryable := r.Method == http.MethodPost && r.Header.Get("Idempotency-Key") != ""
	if retryable && body == nil {
		var err error
		if body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20)); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
			return
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if rt.ring.Up(addr) {
			// Zero-copy proxy: the body streams through untouched (routing
			// needed only the path), and the response streams back through a
			// pooled buffer — the router never decodes the data plane.
			var rd io.Reader = r.Body
			if body != nil {
				rd = bytes.NewReader(body)
			}
			url := addr + r.URL.Path
			if r.URL.RawQuery != "" {
				url += "?" + r.URL.RawQuery
			}
			req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
			if err != nil {
				writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
				return
			}
			for _, k := range []string{"Content-Type", "Idempotency-Key"} {
				if v := r.Header.Get(k); v != "" {
					req.Header.Set(k, v)
				}
			}
			done := rt.trackInflight(addr)
			resp, err := rt.client.Do(req)
			if err == nil {
				defer done()
				defer resp.Body.Close()
				rt.m.proxied.Add(1)
				if resp.StatusCode == http.StatusTooManyRequests {
					rt.m.rejected.Add(1)
				}
				for _, k := range []string{"Content-Type", "Retry-After"} {
					if v := resp.Header.Get(k); v != "" {
						w.Header().Set(k, v)
					}
				}
				w.WriteHeader(resp.StatusCode)
				copyPooled(w, resp.Body)
				return
			}
			done()
			lastErr = err
			rt.m.backendErrors.Add(1)
			rt.checker.markDown(addr)
		}
		if !retryable || attempt >= keyedRetryAttempts {
			break
		}
		rt.m.keyedRetries.Add(1)
		rt.client.NoteRetry("transport")
		stop := false
		select {
		case <-r.Context().Done(): // the client hung up: stop retrying
			lastErr = r.Context().Err()
			stop = true
		case <-time.After(time.Duration(100<<attempt) * time.Millisecond):
		}
		if stop {
			break
		}
		// Re-resolve: the failure may have re-homed the session (mark-down
		// plus promotion flips the pin to the follower).
		if id := r.PathValue("id"); id != "" {
			if newAddr, err := rt.ring.Lookup(id); err == nil {
				addr = newAddr
			}
		}
	}
	if lastErr != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": fmt.Sprintf("backend %s: %v", addr, lastErr)})
		return
	}
	rt.refuse(w, &BackendDownError{Addr: addr})
}

// refuse maps routing failures onto statuses: no backend or a down
// backend is 503 (retryable once health or handoff heals the ring).
func (rt *Router) refuse(w http.ResponseWriter, err error) {
	rt.m.unroutable.Add(1)
	var down *BackendDownError
	if errors.Is(err, ErrNoBackends) || errors.As(err, &down) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// routers tracks live routers so the process-wide expvar export can
// aggregate across them (a process normally has exactly one).
var (
	routersMu        sync.Mutex
	routers          = make(map[*Router]bool)
	routerExpvarOnce sync.Once
)

func registerRouterExpvar(rt *Router) {
	routersMu.Lock()
	routers[rt] = true
	routersMu.Unlock()
	routerExpvarOnce.Do(func() {
		expvar.Publish("spocus_router", expvar.Func(func() any {
			routersMu.Lock()
			defer routersMu.Unlock()
			agg := make([]map[string]int64, 0, len(routers))
			for rt := range routers {
				agg = append(agg, rt.statsSnapshot())
			}
			return agg
		}))
	})
}
