package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/replica"
	"repro/internal/session"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func orderInstance(item string) relation.Instance {
	in := relation.NewInstance()
	in.Add("order", relation.Tuple{relation.Const(item)})
	return in
}

// replCluster is n in-process backends, each hosting a warm follower of its
// predecessor (the FollowerOf convention on a ring of n), behind one router.
type replCluster struct {
	engines   []*session.Engine
	followers []*replica.Follower
	backends  []*httptest.Server
	urls      []string
	router    *Router
	front     *httptest.Server
}

func newReplCluster(t *testing.T, n int, cfg func(*RouterConfig)) *replCluster {
	t.Helper()
	tc := &replCluster{}
	// Unstarted servers first: every follower needs its primary's URL, and
	// the follow graph is a cycle, so all addresses must exist up front.
	for i := 0; i < n; i++ {
		// Durable primaries: only a WAL-backed engine can stream.
		e, err := session.NewEngine(session.Config{Dir: t.TempDir(), Shards: 2, Fsync: session.FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewUnstartedServer(nil)
		tc.engines = append(tc.engines, e)
		tc.backends = append(tc.backends, srv)
		tc.urls = append(tc.urls, "http://"+srv.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		f, err := replica.New(replica.Config{
			Primary: tc.urls[(i-1+n)%n],
			Dir:     t.TempDir(),
			Shards:  2,
			Fsync:   session.FsyncNever,
			Poll:    100 * time.Millisecond,
			Logf:    t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.followers = append(tc.followers, f)
		tc.backends[i].Config.Handler = replica.Handler(f, tc.engines[i], nil, session.Handler(tc.engines[i]))
		tc.backends[i].Start()
	}
	for _, f := range tc.followers {
		f.Start()
	}
	rc := RouterConfig{
		Backends: tc.urls,
		Vnodes:   128,
		Health:   HealthConfig{Interval: 20 * time.Millisecond, Timeout: 200 * time.Millisecond, FailAfter: 2, MaxBackoff: 100 * time.Millisecond},
	}
	if cfg != nil {
		cfg(&rc)
	}
	rt, err := NewRouter(rc)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		rt.Close()
		for i := range tc.backends {
			tc.backends[i].Close()
			tc.followers[i].Stop()
			tc.engines[i].Shutdown()
		}
	})
	return tc
}

// ownedBy mints session IDs until one hashes to the wanted backend.
func (tc *replCluster) ownedBy(t *testing.T, addr, prefix string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		id := fmt.Sprintf("%s-%04d", prefix, i)
		if owner, err := tc.router.Ring().Lookup(id); err == nil && owner == addr {
			return id
		}
	}
	t.Fatalf("no id hashing to %s", addr)
	return ""
}

// followerHost returns the index of the backend following tc.urls[i].
func (tc *replCluster) followerHost(i int) int { return (i + 1) % len(tc.urls) }

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPromoteFailsOverSessions: kill a backend, promote its follower, and
// every session the dead backend owned is served again — same logs, still
// accepting steps — without replaying anything from the corpse.
func TestPromoteFailsOverSessions(t *testing.T) {
	tc := newReplCluster(t, 3, nil)
	victim := 0
	folHost := tc.followerHost(victim)

	ids := []string{
		tc.ownedBy(t, tc.urls[victim], "pf-a"),
		tc.ownedBy(t, tc.urls[victim], "pf-b"),
	}
	items := []string{"newsweek", "time", "fortune"}
	for _, id := range ids {
		if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil); st != http.StatusCreated {
			t.Fatalf("open %s: %d", id, st)
		}
		for _, item := range items {
			if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput(item), nil); st != http.StatusOK {
				t.Fatalf("input %s: %d", id, st)
			}
		}
	}
	// Oracle: the logs as the primary acknowledged them.
	oracle := map[string]json.RawMessage{}
	for _, id := range ids {
		var lr struct {
			Log json.RawMessage `json:"log"`
		}
		if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &lr); st != http.StatusOK {
			t.Fatalf("log %s: %d", id, st)
		}
		oracle[id] = lr.Log
	}
	// Let the follower catch up fully before the crash.
	for _, id := range ids {
		id := id
		waitFor(t, "follower sync of "+id, func() bool {
			info, err := tc.followers[folHost].Engine().Info(id)
			return err == nil && info.Steps == len(items)
		})
	}

	tc.backends[victim].Close() // SIGKILL-equivalent for an httptest backend
	waitFor(t, "mark-down", func() bool { return !tc.router.Ring().Up(tc.urls[victim]) })

	var pr PromoteResult
	if st := postJSON(t, tc.front.URL+"/admin/promote?backend="+tc.urls[victim], nil, &pr); st != http.StatusOK {
		t.Fatalf("promote: %d", st)
	}
	if pr.Follower != tc.urls[folHost] || len(pr.Sessions) != len(ids) {
		t.Fatalf("promote result: %+v", pr)
	}

	for _, id := range ids {
		// Logs survive byte-for-byte.
		var lr struct {
			Log json.RawMessage `json:"log"`
		}
		if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &lr); st != http.StatusOK {
			t.Fatalf("log %s after promote: %d", id, st)
		}
		if string(lr.Log) != string(oracle[id]) {
			t.Fatalf("%s log after promote differs:\n got %s\nwant %s", id, lr.Log, oracle[id])
		}
		// And the session keeps stepping on its new home.
		var res session.StepResult
		if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("wired"), &res); st != http.StatusOK {
			t.Fatalf("input %s after promote: %d", id, st)
		}
		if res.Seq != len(items)+1 {
			t.Fatalf("%s after promote: seq %d", id, res.Seq)
		}
	}
	// Promoting a backend that is still up is refused without force.
	if st := postJSON(t, tc.front.URL+"/admin/promote?backend="+tc.urls[folHost], nil, nil); st == http.StatusOK {
		t.Fatal("promoted a live backend without force")
	}
}

// TestFollowerReads: with -follower-reads on, session reads are served by
// the owner's follower (observable via X-Spocus-Served-By) and match the
// primary's answer; mutations still go to the primary.
func TestFollowerReads(t *testing.T) {
	tc := newReplCluster(t, 2, func(rc *RouterConfig) {
		rc.FollowerReads = true
		rc.FollowerMaxLag = 0
	})
	victim := 0
	folHost := tc.followerHost(victim)
	id := tc.ownedBy(t, tc.urls[victim], "fr")
	if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil); st != http.StatusCreated {
		t.Fatalf("open: %d", st)
	}
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("time"), nil); st != http.StatusOK {
		t.Fatalf("input: %d", st)
	}
	waitFor(t, "follower sync", func() bool {
		info, err := tc.followers[folHost].Engine().Info(id)
		return err == nil && info.Steps == 1
	})
	resp, err := http.Get(tc.front.URL + "/sessions/" + id + "/log")
	if err != nil {
		t.Fatal(err)
	}
	var lr struct {
		Log any `json:"log"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("log: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Spocus-Served-By"); got != tc.urls[folHost] {
		t.Fatalf("served by %q, want follower %s", got, tc.urls[folHost])
	}
	gotJSON, _ := json.Marshal(lr.Log)
	want, err := tc.engines[victim].Log(id)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want.Log)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("follower-served log differs:\n got %s\nwant %s", gotJSON, wantJSON)
	}
	// Writes are untouched by follower routing.
	var res session.StepResult
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("newsweek"), &res); st != http.StatusOK || res.Seq != 2 {
		t.Fatalf("write with follower reads on: %d seq %d", st, res.Seq)
	}
	if tc.router.m.followerReads.Load() == 0 {
		t.Fatal("follower_reads_total never incremented")
	}
}

// TestFollowerReadLagBound: a follower whose self-reported lag exceeds the
// bound never serves the read — the primary answers instead. Fake servers
// make the lag deterministic.
func TestFollowerReadLagBound(t *testing.T) {
	eng, err := session.NewEngine(session.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	primary := httptest.NewServer(session.Handler(eng))
	defer primary.Close()

	var mu sync.Mutex
	lag := int64(5)
	stale := `{"log":[{"stale":[["yes"]]}]}`
	follower := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		l := lag
		mu.Unlock()
		switch {
		case r.URL.Path == "/replica/state":
			fmt.Fprintf(w, `{"following":%q,"lag":%d,"sessions":1}`, primary.URL, l)
		case r.URL.Path == "/healthz":
			fmt.Fprint(w, `{"ok":true}`)
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, stale)
		}
	}))
	defer follower.Close()

	rt, err := NewRouter(RouterConfig{
		Backends:       []string{primary.URL, follower.URL},
		Vnodes:         128,
		Health:         HealthConfig{Interval: 20 * time.Millisecond, FailAfter: 2},
		FollowerReads:  true,
		FollowerMaxLag: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	var id string
	for i := 0; ; i++ {
		id = fmt.Sprintf("lb-%04d", i)
		if owner, err := rt.Ring().Lookup(id); err == nil && owner == primary.URL {
			break
		}
	}
	if _, err := eng.Open(&session.OpenRequest{ID: id, Model: "short"}); err != nil {
		t.Fatal(err)
	}

	// Lag 5 > bound 2: the primary answers, no served-by header.
	resp, err := http.Get(front.URL + "/sessions/" + id + "/log")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("log: %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Spocus-Served-By"); h != "" {
		t.Fatalf("lagging follower served the read (served-by %s)", h)
	}

	// Lag inside the bound (cache must expire first): the follower serves.
	mu.Lock()
	lag = 1
	mu.Unlock()
	waitFor(t, "follower cache refresh", func() bool {
		resp, err := http.Get(front.URL + "/sessions/" + id + "/log")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.Header.Get("X-Spocus-Served-By") == follower.URL
	})
}

// TestKeyedRetryAcrossPromotion: a POST carrying an Idempotency-Key whose
// owner dies mid-request is retried transparently; once promotion re-homes
// the session, the retry lands there and the client sees one clean answer.
func TestKeyedRetryAcrossPromotion(t *testing.T) {
	tc := newReplCluster(t, 3, nil)
	victim := 0
	folHost := tc.followerHost(victim)
	id := tc.ownedBy(t, tc.urls[victim], "kr")
	if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": id, "model": "short"}, nil); st != http.StatusCreated {
		t.Fatalf("open: %d", st)
	}
	if st := postJSON(t, tc.front.URL+"/sessions/"+id+"/input", orderInput("time"), nil); st != http.StatusOK {
		t.Fatalf("input: %d", st)
	}
	waitFor(t, "follower sync", func() bool {
		info, err := tc.followers[folHost].Engine().Info(id)
		return err == nil && info.Steps == 1
	})

	tc.backends[victim].Close()

	// The keyed request starts while the backend is dead and un-promoted;
	// the router must hold it through mark-down + promotion.
	type answer struct {
		status int
		res    session.StepResult
	}
	got := make(chan answer, 1)
	go func() {
		body := []byte(`{"input":{"order":[["newsweek"]]}}`)
		req, _ := http.NewRequest(http.MethodPost, tc.front.URL+"/sessions/"+id+"/input", bytesReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "retry-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			got <- answer{status: -1}
			return
		}
		defer resp.Body.Close()
		var res session.StepResult
		json.NewDecoder(resp.Body).Decode(&res)
		got <- answer{status: resp.StatusCode, res: res}
	}()

	waitFor(t, "mark-down", func() bool { return !tc.router.Ring().Up(tc.urls[victim]) })
	if _, err := tc.router.Promote(tc.urls[victim], false); err != nil {
		t.Fatalf("promote: %v", err)
	}
	a := <-got
	if a.status != http.StatusOK || a.res.Seq != 2 {
		t.Fatalf("keyed request across failover: status %d, res %+v", a.status, a.res)
	}
	// The same key again answers the same step as a duplicate — proof the
	// retry path cannot double-apply either.
	req, _ := http.NewRequest(http.MethodPost, tc.front.URL+"/sessions/"+id+"/input", bytesReader([]byte(`{"input":{"order":[["fortune"]]}}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "retry-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var res session.StepResult
	json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if !res.Duplicate || res.Seq != 2 {
		t.Fatalf("dup after failover: %+v", res)
	}
	if tc.router.m.keyedRetries.Load() == 0 {
		t.Fatal("keyed_retries_total never incremented")
	}
}

// TestHandoffTargetMarkedDownMidFlight is the regression test for the
// mark-down/handoff race: the health checker flips the target down after
// the session has moved but before the source is retired. The handoff must
// roll back — source unfrozen and still owning, no pin to the down target,
// no orphan copy — instead of pinning the session to a dead backend.
func TestHandoffTargetMarkedDownMidFlight(t *testing.T) {
	engines := make([]*session.Engine, 2)
	servers := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range engines {
		e, err := session.NewEngine(session.Config{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = e
		servers[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + servers[i].Listener.Addr().String()
		defer e.Shutdown()
	}
	var rt *Router
	// Source serves normally; the target simulates the racing prober by
	// marking itself down the moment the install lands — after the move,
	// before the retire.
	servers[0].Config.Handler = session.Handler(engines[0])
	inner := session.Handler(engines[1])
	servers[1].Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(w, r)
		if r.URL.Path == "/admin/install" {
			rt.checker.markDown(urls[1])
		}
	})
	for _, s := range servers {
		s.Start()
		defer s.Close()
	}
	var err error
	rt, err = NewRouter(RouterConfig{
		Backends: urls,
		Vnodes:   128,
		// Slow prober: only the injected markDown flips state mid-test.
		Health: HealthConfig{Interval: time.Hour, Timeout: time.Second, FailAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	var id string
	for i := 0; ; i++ {
		id = fmt.Sprintf("race-%04d", i)
		if owner, err := rt.Ring().Lookup(id); err == nil && owner == urls[0] {
			break
		}
	}
	if _, err := engines[0].Open(&session.OpenRequest{ID: id, Model: "short"}); err != nil {
		t.Fatal(err)
	}
	if _, err := engines[0].Input(id, orderInstance("time")); err != nil {
		t.Fatal(err)
	}

	if _, err := rt.Handoff(id, urls[1]); err == nil {
		t.Fatal("handoff to a target marked down mid-flight succeeded")
	}
	// No pin: the session still routes to its hash home once the target is
	// back up (the pin table must not have flipped).
	rt.Ring().SetUp(urls[1], true)
	owner, err := rt.Ring().Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	if owner != urls[0] {
		t.Fatalf("session routed to %s after rolled-back handoff, want %s", owner, urls[0])
	}
	// Source copy is unfrozen and serving.
	if _, err := engines[0].Input(id, orderInstance("newsweek")); err != nil {
		t.Fatalf("source session after rollback: %v", err)
	}
	// No orphan on the target.
	if _, err := engines[1].Info(id); err == nil {
		t.Fatal("orphan session copy survived on the rolled-back target")
	}
}
