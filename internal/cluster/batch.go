package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/session"
)

// The router side of the batched data plane. POST /batch arrives as one
// multi-session envelope; the router splits it by ring owner, fans out one
// pipelined sub-batch per backend over the shared wire client, and merges
// the per-item statuses back into request order. Failure stays per item:
// an unroutable session is its item's 503, a dead backend is its
// sub-batch's 502 — neighbors on healthy backends still commit.
//
// The split is zero-copy on the payload: only the routing fields (session,
// key) are decoded, and each item's input plus each backend's per-item
// answers travel through as raw JSON — the router never materializes a
// relation instance or a step result.

// rawBatchItem is one batch step with the input left undecoded. Session
// routes it; Key gates the transparent-retry rule; Input passes through.
type rawBatchItem struct {
	Session string          `json:"session"`
	Key     string          `json:"key,omitempty"`
	Input   json.RawMessage `json:"input,omitempty"`
}

type rawBatchRequest struct {
	Steps   []rawBatchItem `json:"steps"`
	Results string         `json:"results,omitempty"`
}

type rawBatchResponse struct {
	Results []json.RawMessage      `json:"results,omitempty"`
	N       int                    `json:"n,omitempty"`
	Failed  []session.BatchFailure `json:"failed,omitempty"`
}

// subBatch is the slice of one incoming batch owned by a single backend:
// the items, and their positions in the client's envelope so the merged
// response stays positional. In errors mode the sub-batch accumulates its
// remapped failures in failed instead of scattering into the positional
// results (each goroutine owns its own subBatch, so no lock).
type subBatch struct {
	addr      string
	steps     []rawBatchItem
	positions []int
	allKeyed  bool
	failed    []session.BatchFailure
}

// rawStatus renders a router-side per-item failure in the backend's
// BatchItemStatus shape.
func rawStatus(status int, msg string) json.RawMessage {
	b, _ := json.Marshal(session.BatchItemStatus{Status: status, Error: msg})
	return b
}

// handleBatch serves POST /batch on the router.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req rawBatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if len(req.Steps) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "batch needs at least one step"})
		return
	}
	switch req.Results {
	case "", "full", "status", "errors":
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "results must be \"full\", \"status\" or \"errors\""})
		return
	}
	rt.m.batchRequests.Add(1)
	rt.m.batchSteps.Add(int64(len(req.Steps)))
	rt.client.ObserveBatch(len(req.Steps))

	sparse := req.Results == "errors"
	var results []json.RawMessage
	if !sparse {
		results = make([]json.RawMessage, len(req.Steps))
	}
	var preFailed []session.BatchFailure

	// Split by owner, preserving first-occurrence backend order and the
	// client's item order within each sub-batch (one session's items stay
	// in order, so its WAL group is the client's order).
	groups := make(map[string]*subBatch)
	var order []string
	for i, st := range req.Steps {
		addr, err := rt.ring.Lookup(st.Session)
		if err != nil {
			rt.m.unroutable.Add(1)
			if sparse {
				preFailed = append(preFailed, session.BatchFailure{Pos: i, Status: http.StatusServiceUnavailable, Error: err.Error()})
			} else {
				results[i] = rawStatus(http.StatusServiceUnavailable, err.Error())
			}
			continue
		}
		g, ok := groups[addr]
		if !ok {
			g = &subBatch{addr: addr, allKeyed: true}
			groups[addr] = g
			order = append(order, addr)
		}
		g.steps = append(g.steps, st)
		g.positions = append(g.positions, i)
		if st.Key == "" {
			g.allKeyed = false
		}
	}

	// Fan out: one pipelined upstream request per backend, all in flight
	// at once. Each sub-batch fills only its own positions.
	var wg sync.WaitGroup
	for _, addr := range order {
		g := groups[addr]
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.forwardSubBatch(r, g, req.Results, results)
		}()
	}
	wg.Wait()
	// Compact: the merged envelope is hot-path payload, not debug output.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if sparse {
		failed := preFailed
		for _, addr := range order {
			failed = append(failed, groups[addr].failed...)
		}
		json.NewEncoder(w).Encode(rawBatchResponse{N: len(req.Steps), Failed: failed})
		return
	}
	json.NewEncoder(w).Encode(rawBatchResponse{Results: results})
}

// forwardSubBatch sends one backend's slice of the batch and scatters the
// per-item statuses into results. A transport failure marks the backend
// down; like single-step forward, it is retried transparently only when
// re-sending is safe — here, when EVERY item carries an idempotency key
// (the backend answers duplicates from its key table). Between attempts
// the owner is re-resolved, so a promotion inside the retry window catches
// the whole sub-batch. A sub-batch that cannot be delivered fails all its
// items with 502; the rest of the client's batch is unaffected.
func (rt *Router) forwardSubBatch(r *http.Request, g *subBatch, mode string, results []json.RawMessage) {
	addr := g.addr
	var lastErr error
	for attempt := 0; ; attempt++ {
		if rt.ring.Up(addr) {
			var resp rawBatchResponse
			done := rt.trackInflight(addr)
			rt.m.batchFanouts.Add(1)
			err := rt.client.PostJSON(r.Context(), addr+"/batch",
				rawBatchRequest{Steps: g.steps, Results: mode}, &resp, nil)
			done()
			if err == nil {
				rt.m.proxied.Add(1)
				if mode == "errors" {
					// Sparse shape: the backend acked the count and listed only
					// failures; remap their positions into the client's envelope.
					if resp.N != len(g.steps) {
						lastErr = fmt.Errorf("backend %s acked %d items for %d steps", addr, resp.N, len(g.steps))
						rt.m.backendErrors.Add(1)
						break
					}
					bad := false
					for _, f := range resp.Failed {
						if f.Pos < 0 || f.Pos >= len(g.positions) {
							lastErr = fmt.Errorf("backend %s failed position %d outside %d steps", addr, f.Pos, len(g.steps))
							rt.m.backendErrors.Add(1)
							bad = true
							break
						}
						if f.Status == http.StatusTooManyRequests {
							rt.m.rejected.Add(1)
						}
						g.failed = append(g.failed, session.BatchFailure{Pos: g.positions[f.Pos], Status: f.Status, Error: f.Error})
					}
					if bad {
						g.failed = nil
						break
					}
					return
				}
				if len(resp.Results) != len(g.steps) {
					lastErr = fmt.Errorf("backend %s answered %d results for %d steps", addr, len(resp.Results), len(g.steps))
					rt.m.backendErrors.Add(1)
					break
				}
				for j, pos := range g.positions {
					results[pos] = resp.Results[j]
					// Probe only the status field; the payload stays raw.
					var st struct {
						Status int `json:"status"`
					}
					if json.Unmarshal(resp.Results[j], &st) == nil && st.Status == http.StatusTooManyRequests {
						rt.m.rejected.Add(1)
					}
				}
				return
			}
			if isStatusError(err) {
				// The backend is alive and refused the envelope (4xx).
				// Surface its verdict per item rather than marking down.
				lastErr = err
				rt.m.backendErrors.Add(1)
				break
			}
			lastErr = err
			rt.m.backendErrors.Add(1)
			rt.checker.markDown(addr)
		} else {
			lastErr = &BackendDownError{Addr: addr}
		}
		if !g.allKeyed || attempt >= keyedRetryAttempts {
			break
		}
		rt.m.keyedRetries.Add(1)
		rt.client.NoteRetry("transport")
		stop := false
		select {
		case <-r.Context().Done(): // the client hung up: stop retrying
			lastErr = r.Context().Err()
			stop = true
		case <-time.After(time.Duration(100<<attempt) * time.Millisecond):
		}
		if stop {
			break
		}
		// Re-resolve: a mark-down plus promotion re-homes every session the
		// dead backend owned onto one follower, so the first session's new
		// owner is the sub-batch's new owner.
		if newAddr, err := rt.ring.Lookup(g.steps[0].Session); err == nil {
			addr = newAddr
		}
	}
	status := http.StatusBadGateway
	msg := fmt.Sprintf("backend %s: %v", addr, lastErr)
	var down *BackendDownError
	if errors.As(lastErr, &down) {
		status = http.StatusServiceUnavailable
	}
	if mode == "errors" {
		for _, pos := range g.positions {
			g.failed = append(g.failed, session.BatchFailure{Pos: pos, Status: status, Error: msg})
		}
		return
	}
	for _, pos := range g.positions {
		results[pos] = rawStatus(status, msg)
	}
}
