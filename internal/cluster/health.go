package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"

	"repro/internal/wire"
)

// HealthConfig tunes the backend health checker.
type HealthConfig struct {
	// Interval between probes of an up backend (default 1s).
	Interval time.Duration
	// Timeout of a single probe (default 500ms).
	Timeout time.Duration
	// FailAfter consecutive probe failures mark a backend down (default 2).
	FailAfter int
	// MaxBackoff caps the exponential probe backoff while a backend is
	// down (default 5s). The first down-probe fires after Interval, then
	// 2×, 4×, ... up to this cap, so a dead backend is not hammered.
	MaxBackoff time.Duration
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	return c
}

// checker probes each ring member's /healthz and flips its up/down state.
// One goroutine per backend: probes of a slow backend never delay probes
// of the others.
type checker struct {
	ring   *Ring
	cfg    HealthConfig
	client *wire.Client
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	kick   map[string]chan struct{} // wake a backend's probe loop early
	onFlip func(addr string, up bool)
}

func startChecker(ring *Ring, cfg HealthConfig, client *wire.Client, onFlip func(string, bool)) *checker {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	c := &checker{
		ring:   ring,
		cfg:    cfg,
		client: client,
		ctx:    ctx,
		cancel: cancel,
		kick:   make(map[string]chan struct{}),
		onFlip: onFlip,
	}
	for _, addr := range ring.Members() {
		kick := make(chan struct{}, 1)
		c.kick[addr] = kick
		c.wg.Add(1)
		go c.watch(addr, kick)
	}
	return c
}

func (c *checker) stop() {
	c.cancel()
	c.wg.Wait()
}

// markDown flips addr down immediately (called by the router on a proxy
// connection failure) and kicks its probe loop so recovery is noticed on
// the health path, not the data path.
func (c *checker) markDown(addr string) {
	if c.ring.Up(addr) {
		c.ring.SetUp(addr, false)
		if c.onFlip != nil {
			c.onFlip(addr, false)
		}
	}
	c.mu.Lock()
	kick := c.kick[addr]
	c.mu.Unlock()
	if kick != nil {
		select {
		case kick <- struct{}{}:
		default:
		}
	}
}

// watch is one backend's probe loop: steady Interval probes while up,
// exponential backoff (capped) while down, FailAfter consecutive failures
// to flip down, a single success to flip up.
func (c *checker) watch(addr string, kick <-chan struct{}) {
	defer c.wg.Done()
	fails := 0
	delay := c.cfg.Interval
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-kick:
		case <-timer.C:
		}
		ok := c.probe(addr)
		up := c.ring.Up(addr)
		switch {
		case ok && !up:
			c.ring.SetUp(addr, true)
			if c.onFlip != nil {
				c.onFlip(addr, true)
			}
			fallthrough
		case ok:
			fails = 0
			delay = c.cfg.Interval
		case up:
			fails++
			if fails >= c.cfg.FailAfter {
				c.ring.SetUp(addr, false)
				if c.onFlip != nil {
					c.onFlip(addr, false)
				}
			}
		default: // still down: back off
			if delay *= 2; delay > c.cfg.MaxBackoff {
				delay = c.cfg.MaxBackoff
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(delay)
	}
}

// probe is one bounded GET /healthz.
func (c *checker) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(c.ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
