package cluster

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/session"
)

// Tests for the router's batch fan-out: a multi-session POST /batch is
// split by ring owner, one sub-batch per backend, and the per-item
// statuses come back positionally — including per-item failures for
// unroutable or unknown sessions, which never disturb their neighbors.

// TestRouterBatchFanout opens sessions across all backends and drives them
// with one /batch request holding a step per session plus a missing
// session and an invalid input. Every good item applies on its ring owner;
// the bad items fail with their own statuses.
func TestRouterBatchFanout(t *testing.T) {
	tc := newTestCluster(t, 3)
	const n = 12
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("rb-%02d", i)
		if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": ids[i], "model": "short"}, nil); st != http.StatusCreated {
			t.Fatalf("open %s: status %d", ids[i], st)
		}
	}
	// Count distinct owners so the fan-out assertion below isn't vacuous.
	owners := map[string]bool{}
	for _, id := range ids {
		addr, err := tc.router.Ring().Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		owners[addr] = true
	}
	if len(owners) < 2 {
		t.Fatalf("want sessions spread over >1 backend, got %d", len(owners))
	}

	reqsBefore := tc.router.m.batchRequests.Load()
	fanoutsBefore := tc.router.m.batchFanouts.Load()

	var steps []session.BatchItem
	for i, id := range ids {
		steps = append(steps, session.BatchItem{Session: id, Key: fmt.Sprintf("key-%d", i), Input: orderInstance("newsweek")})
	}
	steps = append(steps, session.BatchItem{Session: "rb-ghost", Input: steps[0].Input})

	var br session.BatchResponse
	if st := postJSON(t, tc.front.URL+"/batch", session.BatchRequest{Steps: steps}, &br); st != http.StatusOK {
		t.Fatalf("/batch: status %d", st)
	}
	if len(br.Results) != len(steps) {
		t.Fatalf("/batch answered %d results for %d steps", len(br.Results), len(steps))
	}
	for i := 0; i < n; i++ {
		r := br.Results[i]
		if r.Status != http.StatusOK || r.Result == nil || r.Result.ID != ids[i] || r.Result.Seq != 1 {
			t.Errorf("item %d (%s): %+v", i, ids[i], r)
		}
	}
	if g := br.Results[n]; g.Status != http.StatusNotFound || g.Error == "" {
		t.Errorf("ghost item: %+v, want per-item 404", g)
	}

	if got := tc.router.m.batchRequests.Load(); got != reqsBefore+1 {
		t.Errorf("batch_requests_total: %d, want %d", got, reqsBefore+1)
	}
	if got := tc.router.m.batchFanouts.Load() - fanoutsBefore; got < int64(len(owners)) {
		t.Errorf("batch_fanouts_total grew by %d, want ≥ %d (one sub-batch per owner)", got, len(owners))
	}

	// Replaying the same batch (same keys) dedupes per item through the
	// router: every keyed step answers Duplicate at its original seq.
	br = session.BatchResponse{}
	if st := postJSON(t, tc.front.URL+"/batch", session.BatchRequest{Steps: steps}, &br); st != http.StatusOK {
		t.Fatalf("replayed /batch: status %d", st)
	}
	for i := 0; i < n; i++ {
		r := br.Results[i]
		if r.Status != http.StatusOK || r.Result == nil || !r.Result.Duplicate || r.Result.Seq != 1 {
			t.Errorf("replayed item %d: %+v, want duplicate of seq 1", i, r)
		}
	}

	// The steps landed on the owners, visible through the router.
	for _, id := range ids {
		var lr session.LogResult
		if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &lr); st != http.StatusOK || lr.Steps != 1 {
			t.Errorf("log %s: status %d steps %d", id, st, lr.Steps)
		}
	}

	// results=errors through the router: the sparse shape merges across
	// sub-batches — the count acknowledges every item, and the only failure
	// listed is the ghost at its envelope position.
	var sp session.BatchResponse
	var sparse []session.BatchItem
	for i, id := range ids {
		sparse = append(sparse, session.BatchItem{Session: id, Key: fmt.Sprintf("ekey-%d", i), Input: orderInstance("le-monde")})
	}
	sparse = append(sparse, session.BatchItem{Session: "rb-ghost", Input: sparse[0].Input})
	if st := postJSON(t, tc.front.URL+"/batch", session.BatchRequest{Steps: sparse, Results: "errors"}, &sp); st != http.StatusOK {
		t.Fatalf("sparse /batch: status %d", st)
	}
	if sp.Results != nil || sp.N != len(sparse) || sp.OK() {
		t.Fatalf("sparse /batch: n %d results %+v failed %+v", sp.N, sp.Results, sp.Failed)
	}
	if len(sp.Failed) != 1 || sp.Failed[0].Pos != n || sp.Failed[0].Status != http.StatusNotFound {
		t.Errorf("sparse failed list: %+v, want only the ghost at pos %d", sp.Failed, n)
	}
	for _, id := range ids {
		var lr session.LogResult
		if st := getJSON(t, tc.front.URL+"/sessions/"+id+"/log", &lr); st != http.StatusOK || lr.Steps != 2 {
			t.Errorf("log %s after sparse batch: status %d steps %d", id, st, lr.Steps)
		}
	}
}

// TestRouterBatchDownOwner kills one backend and batches across every
// session: items owned by the dead backend fail per-item with 503, items
// on survivors keep applying in the same request.
func TestRouterBatchDownOwner(t *testing.T) {
	tc := newTestCluster(t, 3)
	const n = 18
	ids := make([]string, n)
	owner := make(map[string]string)
	for i := range ids {
		ids[i] = fmt.Sprintf("rbd-%02d", i)
		if st := postJSON(t, tc.front.URL+"/sessions", map[string]string{"id": ids[i], "model": "short"}, nil); st != http.StatusCreated {
			t.Fatalf("open %s: status %d", ids[i], st)
		}
		addr, err := tc.router.Ring().Lookup(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		owner[ids[i]] = addr
	}

	victim := tc.backends[0].URL
	tc.backends[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	for tc.router.Ring().Up(victim) {
		if time.Now().After(deadline) {
			t.Fatal("router never marked the dead backend down")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var steps []session.BatchItem
	for _, id := range ids {
		steps = append(steps, session.BatchItem{Session: id, Input: orderInstance("time")})
	}
	var br session.BatchResponse
	if st := postJSON(t, tc.front.URL+"/batch", session.BatchRequest{Steps: steps}, &br); st != http.StatusOK {
		t.Fatalf("/batch with a down owner: status %d", st)
	}
	served, refused := 0, 0
	for i, id := range ids {
		r := br.Results[i]
		if owner[id] == victim {
			if r.Status != http.StatusServiceUnavailable {
				t.Errorf("item %s on dead owner: %+v, want per-item 503", id, r)
			}
			refused++
			continue
		}
		if r.Status != http.StatusOK || r.Result == nil || r.Result.Seq != 1 {
			t.Errorf("item %s on survivor: %+v", id, r)
		}
		served++
	}
	if served == 0 || refused == 0 {
		t.Fatalf("vacuous down-owner test: %d served, %d refused", served, refused)
	}
}
