package cluster

import (
	"errors"
	"fmt"
	"testing"
)

// TestRingDistribution: with ≥128 vnodes, key distribution across N
// backends stays within 15% of uniform.
func TestRingDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		for _, vnodes := range []int{128, 256} {
			r := NewRing(vnodes)
			for b := 0; b < n; b++ {
				r.Add(fmt.Sprintf("http://backend-%d:8080", b))
			}
			const keys = 30000
			counts := make(map[string]int)
			for k := 0; k < keys; k++ {
				addr, err := r.Lookup(fmt.Sprintf("session-%08x", k))
				if err != nil {
					t.Fatal(err)
				}
				counts[addr]++
			}
			ideal := float64(keys) / float64(n)
			for addr, c := range counts {
				dev := (float64(c) - ideal) / ideal
				if dev < -0.15 || dev > 0.15 {
					t.Errorf("n=%d vnodes=%d: %s owns %d keys, %.1f%% from uniform (limit 15%%)",
						n, vnodes, addr, c, dev*100)
				}
			}
			if len(counts) != n {
				t.Errorf("n=%d vnodes=%d: only %d backends received keys", n, vnodes, len(counts))
			}
		}
	}
}

// TestRingKeyspaceShares: the /debug/shards share computation agrees with
// the empirical key distribution.
func TestRingKeyspaceShares(t *testing.T) {
	r := NewRing(128)
	for b := 0; b < 3; b++ {
		r.Add(fmt.Sprintf("http://backend-%d:8080", b))
	}
	info := r.Snapshot()
	var total float64
	for _, m := range info.Members {
		if m.Share < 0.20 || m.Share > 0.47 {
			t.Errorf("%s share %.3f outside sane band", m.Addr, m.Share)
		}
		total += m.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %.6f, want 1", total)
	}
}

// TestRingMinimalDisruption: removing one backend remaps only the keys it
// owned; every other key keeps its backend.
func TestRingMinimalDisruption(t *testing.T) {
	const keys = 20000
	backends := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(128)
	for _, b := range backends {
		r.Add(b)
	}
	before := make(map[string]string, keys)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("session-%08x", k)
		addr, err := r.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		before[key] = addr
	}

	victim := backends[2]
	r.Remove(victim)
	moved := 0
	for key, owner := range before {
		addr, err := r.Lookup(key)
		if err != nil {
			t.Fatal(err)
		}
		if owner == victim {
			moved++
			if addr == victim {
				t.Fatalf("key %s still maps to removed backend", key)
			}
			continue
		}
		if addr != owner {
			t.Fatalf("key %s moved %s → %s although its backend survived", key, owner, addr)
		}
	}
	if moved == 0 {
		t.Fatal("victim owned no keys; test is vacuous")
	}

	// A health flip moves nothing at all: ownership ignores health, so
	// the down backend's keys become unroutable (BackendDownError names
	// the owner) instead of re-homing, and every other key stays put.
	r2 := NewRing(128)
	for _, b := range backends {
		r2.Add(b)
	}
	r2.SetUp(victim, false)
	for key, owner := range before {
		addr, err := r2.Lookup(key)
		if owner == victim {
			var down *BackendDownError
			if !errors.As(err, &down) || addr != victim {
				t.Fatalf("down owner's key %s: %s, %v (want BackendDownError on %s)", key, addr, err, victim)
			}
			continue
		}
		if err != nil || addr != owner {
			t.Fatalf("down-flip moved surviving key %s: %s → %s (%v)", key, owner, addr, err)
		}
	}

	// Recovery restores exactly the original map — no key moved while the
	// backend was down, so none is misplaced after it returns.
	r2.SetUp(victim, true)
	for key, owner := range before {
		if addr, err := r2.Lookup(key); err != nil || addr != owner {
			t.Fatalf("key %s after recovery: %s, %v (want %s)", key, addr, err, owner)
		}
	}
}

// TestRingPins: pins override the hash, survive other members' health
// flips, resolve to down backends with BackendDownError, and are dropped
// when their target is removed.
func TestRingPins(t *testing.T) {
	r := NewRing(128)
	r.Add("http://a:1")
	r.Add("http://b:1")

	r.Pin("sess", "http://b:1")
	addr, err := r.Lookup("sess")
	if err != nil || addr != "http://b:1" {
		t.Fatalf("pinned lookup: %s, %v", addr, err)
	}
	r.SetUp("http://a:1", false) // unrelated flip: pin unaffected
	if addr, err = r.Lookup("sess"); err != nil || addr != "http://b:1" {
		t.Fatalf("pinned lookup after unrelated flip: %s, %v", addr, err)
	}
	r.SetUp("http://a:1", true)

	r.SetUp("http://b:1", false)
	var down *BackendDownError
	if addr, err = r.Lookup("sess"); !errors.As(err, &down) || addr != "http://b:1" {
		t.Fatalf("pin to down backend: %s, %v (want BackendDownError)", addr, err)
	}

	r.Remove("http://b:1")
	if addr, err = r.Lookup("sess"); err != nil || addr != "http://a:1" {
		t.Fatalf("after pin target removed, lookup should rehash: %s, %v", addr, err)
	}

	r.Pin("sess", "http://a:1")
	r.Pin("sess", "")
	if info := r.Snapshot(); len(info.Pins) != 0 {
		t.Fatalf("cleared pin still in snapshot: %v", info.Pins)
	}
}

// TestRingEmpty: a memberless ring has no owners (ErrNoBackends); an
// all-down ring still has owners — their keys are unroutable, not
// ownerless.
func TestRingEmpty(t *testing.T) {
	r := NewRing(128)
	if _, err := r.Lookup("x"); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("empty ring: %v, want ErrNoBackends", err)
	}
	r.Add("http://a:1")
	r.SetUp("http://a:1", false)
	var down *BackendDownError
	if addr, err := r.Lookup("x"); !errors.As(err, &down) || addr != "http://a:1" {
		t.Fatalf("all-down ring: %s, %v (want BackendDownError on the owner)", addr, err)
	}
}
