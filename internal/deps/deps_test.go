package deps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/relation"
)

// paperExample is the paper's own instance: R binary, F = {1→2},
// G = {R[1] ⊆ R[2]}; F ⊭ G.
func paperExample() (Set, Set) {
	f := Set{Arity: 2, FDs: []FD{{Lhs: []int{1}, Rhs: 2}}}
	g := Set{Arity: 2, IncDs: []IncD{{Lhs: []int{1}, Rhs: []int{2}}}}
	return f, g
}

// transitivity is a known implication: {1→2, 2→3} ⊨ {1→3} over arity 3.
func transitivity() (Set, Set) {
	f := Set{Arity: 3, FDs: []FD{{Lhs: []int{1}, Rhs: 2}, {Lhs: []int{2}, Rhs: 3}}}
	g := Set{Arity: 3, FDs: []FD{{Lhs: []int{1}, Rhs: 3}}}
	return f, g
}

func rel2(pairs ...[2]string) *relation.Rel {
	r := relation.NewRel(2)
	for _, p := range pairs {
		r.Add(relation.Tuple{relation.Const(p[0]), relation.Const(p[1])})
	}
	return r
}

func TestSatisfaction(t *testing.T) {
	fd := FD{Lhs: []int{1}, Rhs: 2}
	if !fd.SatisfiedBy(rel2([2]string{"a", "1"}, [2]string{"b", "2"})) {
		t.Error("satisfying instance rejected")
	}
	if fd.SatisfiedBy(rel2([2]string{"a", "1"}, [2]string{"a", "2"})) {
		t.Error("violating instance accepted")
	}
	inc := IncD{Lhs: []int{1}, Rhs: []int{2}}
	if !inc.SatisfiedBy(rel2([2]string{"a", "a"})) {
		t.Error("satisfying inclusion rejected")
	}
	if inc.SatisfiedBy(rel2([2]string{"a", "b"})) {
		t.Error("violating inclusion accepted")
	}
}

func TestImpliesTransitivity(t *testing.T) {
	f, g := transitivity()
	ans, _ := Implies(f, g, 1000)
	if ans != Implied {
		t.Errorf("transitivity: %v, want implied", ans)
	}
}

func TestImpliesPaperExample(t *testing.T) {
	f, g := paperExample()
	ans, witness := Implies(f, g, 1000)
	if ans != NotImplied {
		t.Fatalf("paper example: %v, want not-implied", ans)
	}
	if witness == nil || !f.SatisfiedBy(witness) || g.SatisfiedBy(witness) {
		t.Errorf("bad witness %s", witness)
	}
}

func TestImpliesReflexive(t *testing.T) {
	f := Set{Arity: 2, IncDs: []IncD{{Lhs: []int{1}, Rhs: []int{2}}}}
	ans, _ := Implies(f, f, 1000)
	if ans != Implied {
		t.Errorf("self-implication: %v", ans)
	}
}

func TestImpliesAugmentedFD(t *testing.T) {
	// {1→2} ⊨ {13→2} (augmentation).
	f := Set{Arity: 3, FDs: []FD{{Lhs: []int{1}, Rhs: 2}}}
	g := Set{Arity: 3, FDs: []FD{{Lhs: []int{1, 3}, Rhs: 2}}}
	ans, _ := Implies(f, g, 1000)
	if ans != Implied {
		t.Errorf("augmentation: %v", ans)
	}
	// The converse fails.
	ans2, w := Implies(g, f, 1000)
	if ans2 != NotImplied {
		t.Errorf("converse augmentation: %v", ans2)
	}
	if w == nil {
		t.Error("no witness")
	}
}

func TestValidateRejectsBadColumns(t *testing.T) {
	s := Set{Arity: 2, FDs: []FD{{Lhs: []int{3}, Rhs: 1}}}
	if err := s.Validate(); err == nil {
		t.Error("out-of-range column accepted")
	}
	s2 := Set{Arity: 2, IncDs: []IncD{{Lhs: []int{1}, Rhs: []int{1, 2}}}}
	if err := s2.Validate(); err == nil {
		t.Error("mismatched inclusion sides accepted")
	}
}

// TestProp31Reduction demonstrates Proposition 3.1: the log (∅, {violg}) is
// producible by the extended transducer iff F ⊭ G.
func TestProp31Reduction(t *testing.T) {
	f, g := paperExample()
	m, err := Prop31Transducer(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind() != core.KindExtended {
		t.Fatalf("kind = %v, want extended", m.Kind())
	}
	// F ⊭ G: feed the chase witness, then an empty step; violg must appear
	// without violf.
	_, witness := Implies(f, g, 1000)
	step1 := relation.NewInstance()
	step1.Ensure("r", 2).UnionWith(witness)
	run, err := m.Execute(relation.NewInstance(), relation.Sequence{step1, relation.NewInstance()})
	if err != nil {
		t.Fatal(err)
	}
	if run.Outputs[0].Rel(ViolG).Len() > 0 || run.Outputs[0].Rel(ViolF).Len() > 0 {
		t.Errorf("step 1 must be silent (state is previous-step): %s", run.Outputs[0])
	}
	if run.Outputs[1].Rel(ViolG).Len() == 0 {
		t.Errorf("violg not derived on F ⊭ G witness: %s", run.Outputs[1])
	}
	if run.Outputs[1].Rel(ViolF).Len() > 0 {
		t.Errorf("violf derived on F-satisfying witness: %s", run.Outputs[1])
	}
	// Log equals (∅, {violg}) exactly.
	if !run.Logs[0].Empty() {
		t.Errorf("log step 1 = %s, want empty", run.Logs[0])
	}
	want := relation.NewInstance()
	want.Add(ViolG, relation.Tuple{})
	if !run.Logs[1].Equal(want) {
		t.Errorf("log step 2 = %s, want {violg}", run.Logs[1])
	}
}

// TestProp31ImpliedCase: when F ⊨ G, no single-instance run produces violg
// without violf (checked by exhaustive search over small instances).
func TestProp31ImpliedCase(t *testing.T) {
	f, g := transitivity()
	m, err := Prop31Transducer(f, g)
	if err != nil {
		t.Fatal(err)
	}
	consts := []relation.Const{"a", "b", "c"}
	var tuples []relation.Tuple
	for _, x := range consts {
		for _, y := range consts {
			for _, z := range consts {
				tuples = append(tuples, relation.Tuple{x, y, z})
			}
		}
	}
	// All instances with up to 2 tuples.
	for i := 0; i < len(tuples); i++ {
		for j := i; j < len(tuples); j++ {
			step1 := relation.NewInstance()
			step1.Add("r", tuples[i])
			step1.Add("r", tuples[j])
			run, err := m.Execute(relation.NewInstance(), relation.Sequence{step1, relation.NewInstance()})
			if err != nil {
				t.Fatal(err)
			}
			hasG := run.Outputs[1].Rel(ViolG).Len() > 0
			hasF := run.Outputs[1].Rel(ViolF).Len() > 0
			if hasG && !hasF {
				t.Fatalf("violg without violf on %v, %v despite F ⊨ G", tuples[i], tuples[j])
			}
		}
	}
}

// TestThm34ReductionNotImplied: when F ⊭ G, a well-formed TFG run produces
// a log Sim cannot imitate — non-containment, as the theorem's reduction
// requires.
func TestThm34ReductionNotImplied(t *testing.T) {
	f, g := paperExample()
	red, err := NewThm34Reduction(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if red.TFG.Kind() != core.KindSpocus || red.Sim.Kind() != core.KindSpocus {
		t.Fatal("reduction machines must be Spocus")
	}
	_, witness := Implies(f, g, 1000)
	inputs := red.WellFormedInputs(witness)
	// Add a final empty step so the violations (computed from past state)
	// can fire.
	inputs = append(inputs, relation.NewInstance())
	run, err := red.TFG.Execute(relation.NewInstance(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if run.Valid(core.ErrorFree) == false {
		t.Fatalf("well-formed input raised error at step %d", run.ErrorFreePrefix()+1)
	}
	last := run.Logs[len(run.Logs)-1]
	if last.Rel(ViolG).Len() == 0 || last.Rel(ViolF).Len() > 0 {
		t.Fatalf("expected violg-without-violf at the end, got %s", last)
	}
	if _, err := red.SimInputsForLog(run.Logs); err == nil {
		t.Fatal("Sim claimed to imitate a F ⊭ G witness log")
	}
}

// TestThm34ReductionImplied: when F ⊨ G, Sim imitates TFG's logs — both on
// well-formed and on adversarial runs.
func TestThm34ReductionImplied(t *testing.T) {
	f, g := transitivity()
	red, err := NewThm34Reduction(f, g)
	if err != nil {
		t.Fatal(err)
	}
	// A well-formed run on an F-satisfying instance.
	inst := relation.NewRel(3)
	inst.Add(relation.Tuple{"a", "b", "c"})
	inst.Add(relation.Tuple{"d", "b", "c"})
	inputs := append(red.WellFormedInputs(inst), relation.NewInstance())
	checkImitation(t, red, inputs)
	// An adversarial (non-well-formed) run: two attribute values at once.
	bad := relation.NewInstance()
	bad.Add("attr1", relation.Tuple{"a"})
	bad.Add("attr1", relation.Tuple{"b"})
	checkImitation(t, red, relation.Sequence{bad, relation.NewInstance()})
	// Missing ok: an empty step.
	checkImitation(t, red, relation.Sequence{relation.NewInstance(), relation.NewInstance()})
}

// checkImitation runs TFG on the inputs and verifies Sim reproduces the log
// exactly.
func checkImitation(t *testing.T, red *Thm34Reduction, inputs relation.Sequence) {
	t.Helper()
	run, err := red.TFG.Execute(relation.NewInstance(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	simIn, err := red.SimInputsForLog(run.Logs)
	if err != nil {
		t.Fatalf("Sim cannot imitate log %v: %v", run.Logs, err)
	}
	simRun, err := red.Sim.Execute(relation.NewInstance(), simIn)
	if err != nil {
		t.Fatal(err)
	}
	if !simRun.Logs.Equal(run.Logs) {
		t.Fatalf("Sim log differs:\ntfg: %v\nsim: %v", run.Logs, simRun.Logs)
	}
}

// TestPropChaseSoundness: whenever the chase says NotImplied, the witness
// really separates F from G; whenever it says Implied on random FD-only
// sets, exhaustive small-instance search finds no counterexample.
func TestPropChaseSoundness(t *testing.T) {
	fdSet := func(r *rand.Rand) Set {
		s := Set{Arity: 3}
		n := 1 + r.Intn(3)
		for i := 0; i < n; i++ {
			lhs := []int{1 + r.Intn(3)}
			if r.Intn(2) == 0 {
				lhs = append(lhs, 1+r.Intn(3))
			}
			s.FDs = append(s.FDs, FD{Lhs: lhs, Rhs: 1 + r.Intn(3)})
		}
		return s
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		F, G := fdSet(r), fdSet(r)
		ans, witness := Implies(F, G, 500)
		switch ans {
		case NotImplied:
			return witness != nil && F.SatisfiedBy(witness) && !G.SatisfiedBy(witness)
		case Implied:
			// Exhaustive check over 2-tuple instances with 2 constants.
			consts := []relation.Const{"a", "b"}
			var tuples []relation.Tuple
			for _, x := range consts {
				for _, y := range consts {
					for _, z := range consts {
						tuples = append(tuples, relation.Tuple{x, y, z})
					}
				}
			}
			for i := range tuples {
				for j := range tuples {
					inst := relation.NewRel(3)
					inst.Add(tuples[i])
					inst.Add(tuples[j])
					if F.SatisfiedBy(inst) && !G.SatisfiedBy(inst) {
						return false
					}
				}
			}
			return true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
