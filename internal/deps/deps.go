// Package deps implements functional and inclusion dependencies over a
// single relation, their (undecidable) implication problem, and the two
// reductions the paper builds on them: Proposition 3.1 (log validity is
// undecidable for Spocus transducers extended with projection state rules)
// and Theorem 3.4 (containment of Spocus transducers is undecidable).
//
// Implication of FDs+IncDs is undecidable [CV85, Mit83], so Implies is a
// bounded chase returning a three-valued answer; the reduction demos use
// dependency sets whose status is known.
package deps

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// FD is a functional dependency Lhs → Rhs over 1-based column indices, as
// written in the paper (e.g. 1 → 2).
type FD struct {
	Lhs []int
	Rhs int
}

func (f FD) String() string {
	parts := make([]string, len(f.Lhs))
	for i, c := range f.Lhs {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, "") + "->" + fmt.Sprint(f.Rhs)
}

// IncD is an inclusion dependency R[Lhs] ⊆ R[Rhs] over 1-based column
// indices (|Lhs| = |Rhs|).
type IncD struct {
	Lhs []int
	Rhs []int
}

func (d IncD) String() string {
	l := make([]string, len(d.Lhs))
	r := make([]string, len(d.Rhs))
	for i := range d.Lhs {
		l[i] = fmt.Sprint(d.Lhs[i])
	}
	for i := range d.Rhs {
		r[i] = fmt.Sprint(d.Rhs[i])
	}
	return "R[" + strings.Join(l, "") + "]⊆R[" + strings.Join(r, "") + "]"
}

// Set is a set of dependencies over one relation of the given arity.
type Set struct {
	Arity int
	FDs   []FD
	IncDs []IncD
}

// Validate checks column indices.
func (s Set) Validate() error {
	col := func(c int) error {
		if c < 1 || c > s.Arity {
			return fmt.Errorf("deps: column %d out of range 1..%d", c, s.Arity)
		}
		return nil
	}
	for _, f := range s.FDs {
		for _, c := range f.Lhs {
			if err := col(c); err != nil {
				return err
			}
		}
		if err := col(f.Rhs); err != nil {
			return err
		}
	}
	for _, d := range s.IncDs {
		if len(d.Lhs) != len(d.Rhs) {
			return fmt.Errorf("deps: inclusion %s has mismatched sides", d)
		}
		for _, c := range append(append([]int{}, d.Lhs...), d.Rhs...) {
			if err := col(c); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s Set) String() string {
	var parts []string
	for _, f := range s.FDs {
		parts = append(parts, f.String())
	}
	for _, d := range s.IncDs {
		parts = append(parts, d.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SatisfiedBy reports whether the instance satisfies the FD.
func (f FD) SatisfiedBy(r *relation.Rel) bool {
	for _, u := range r.Tuples() {
		for _, v := range r.Tuples() {
			agree := true
			for _, c := range f.Lhs {
				if u[c-1] != v[c-1] {
					agree = false
					break
				}
			}
			if agree && u[f.Rhs-1] != v[f.Rhs-1] {
				return false
			}
		}
	}
	return true
}

// SatisfiedBy reports whether the instance satisfies the IncD.
func (d IncD) SatisfiedBy(r *relation.Rel) bool {
	for _, u := range r.Tuples() {
		found := false
		for _, v := range r.Tuples() {
			ok := true
			for k := range d.Lhs {
				if u[d.Lhs[k]-1] != v[d.Rhs[k]-1] {
					ok = false
					break
				}
			}
			if ok {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// SatisfiedBy reports whether the instance satisfies every dependency.
func (s Set) SatisfiedBy(r *relation.Rel) bool {
	for _, f := range s.FDs {
		if !f.SatisfiedBy(r) {
			return false
		}
	}
	for _, d := range s.IncDs {
		if !d.SatisfiedBy(r) {
			return false
		}
	}
	return true
}

// Answer is a three-valued implication verdict.
type Answer int

const (
	// Unknown means the chase budget was exhausted.
	Unknown Answer = iota
	// Implied means F ⊨ G.
	Implied
	// NotImplied means F ⊭ G, witnessed by a finite instance.
	NotImplied
)

func (a Answer) String() string {
	switch a {
	case Implied:
		return "implied"
	case NotImplied:
		return "not-implied"
	}
	return "unknown"
}

// Implies runs the bounded chase to test whether every instance satisfying
// f also satisfies every dependency of g. The chase may diverge (the
// problem is undecidable); maxSteps bounds the work. When the verdict is
// NotImplied, the returned instance satisfies f but violates g.
func Implies(f, g Set, maxSteps int) (Answer, *relation.Rel) {
	if f.Arity != g.Arity {
		return NotImplied, nil
	}
	overall := Implied
	for _, fd := range g.FDs {
		if fd.trivial() || containsFD(f.FDs, fd) {
			continue
		}
		ans, witness := chaseFD(f, fd, maxSteps)
		switch ans {
		case NotImplied:
			return NotImplied, witness
		case Unknown:
			overall = Unknown
		}
	}
	for _, ind := range g.IncDs {
		if ind.trivial() || containsIncD(f.IncDs, ind) {
			continue
		}
		ans, witness := chaseIncD(f, ind, maxSteps)
		switch ans {
		case NotImplied:
			return NotImplied, witness
		case Unknown:
			overall = Unknown
		}
	}
	return overall, nil
}

// trivial reports whether the FD holds in every instance (Rhs ∈ Lhs).
func (f FD) trivial() bool {
	for _, c := range f.Lhs {
		if c == f.Rhs {
			return true
		}
	}
	return false
}

// trivial reports whether the IncD holds in every instance (Lhs = Rhs).
func (d IncD) trivial() bool {
	for k := range d.Lhs {
		if d.Lhs[k] != d.Rhs[k] {
			return false
		}
	}
	return true
}

func containsFD(fds []FD, fd FD) bool {
	for _, f := range fds {
		if f.String() == fd.String() {
			return true
		}
	}
	return false
}

func containsIncD(ds []IncD, d IncD) bool {
	for _, e := range ds {
		if e.String() == d.String() {
			return true
		}
	}
	return false
}

// chaseState is a tableau of tuples over integer labeled nulls with a
// union-find for FD-forced equalities.
type chaseState struct {
	arity  int
	tuples [][]int
	parent map[int]int
	next   int
}

func newChase(arity int) *chaseState {
	return &chaseState{arity: arity, parent: map[int]int{}}
}

func (c *chaseState) fresh() int {
	c.next++
	c.parent[c.next] = c.next
	return c.next
}

func (c *chaseState) find(x int) int {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]]
		x = c.parent[x]
	}
	return x
}

func (c *chaseState) union(x, y int) {
	rx, ry := c.find(x), c.find(y)
	if rx != ry {
		c.parent[rx] = ry
	}
}

func (c *chaseState) canon(t []int) []int {
	out := make([]int, len(t))
	for i, x := range t {
		out[i] = c.find(x)
	}
	return out
}

func (c *chaseState) key(t []int) string {
	return fmt.Sprint(c.canon(t))
}

// step applies one applicable chase rule of f; it returns false at fixpoint.
func (c *chaseState) step(f Set) bool {
	// FD rule: equate Rhs values of tuples agreeing on Lhs.
	for _, fd := range f.FDs {
		for i := range c.tuples {
			for j := range c.tuples {
				u, v := c.canon(c.tuples[i]), c.canon(c.tuples[j])
				agree := true
				for _, col := range fd.Lhs {
					if u[col-1] != v[col-1] {
						agree = false
						break
					}
				}
				if agree && u[fd.Rhs-1] != v[fd.Rhs-1] {
					c.union(u[fd.Rhs-1], v[fd.Rhs-1])
					return true
				}
			}
		}
	}
	// IncD rule: add a witness tuple with fresh nulls elsewhere.
	for _, d := range f.IncDs {
		seen := map[string]bool{}
		for _, t := range c.tuples {
			seen[c.key(t)] = true
		}
		for _, t := range c.tuples {
			u := c.canon(t)
			found := false
			for _, w := range c.tuples {
				v := c.canon(w)
				ok := true
				for k := range d.Lhs {
					if u[d.Lhs[k]-1] != v[d.Rhs[k]-1] {
						ok = false
						break
					}
				}
				if ok {
					found = true
					break
				}
			}
			if !found {
				fresh := make([]int, c.arity)
				for i := range fresh {
					fresh[i] = c.fresh()
				}
				for k := range d.Lhs {
					fresh[d.Rhs[k]-1] = u[d.Lhs[k]-1]
				}
				if !seen[c.key(fresh)] {
					c.tuples = append(c.tuples, fresh)
					return true
				}
			}
		}
	}
	return false
}

func (c *chaseState) run(f Set, maxSteps int) bool {
	for i := 0; i < maxSteps; i++ {
		if !c.step(f) {
			return true
		}
	}
	return false
}

// rel converts the tableau into a concrete instance (nulls become
// constants n<i>).
func (c *chaseState) rel() *relation.Rel {
	r := relation.NewRel(c.arity)
	for _, t := range c.tuples {
		u := c.canon(t)
		tup := make(relation.Tuple, len(u))
		for i, x := range u {
			tup[i] = relation.Const(fmt.Sprintf("n%d", x))
		}
		r.Add(tup)
	}
	return r
}

// chaseFD tests f ⊨ fd by chasing the canonical two-tuple violation.
func chaseFD(f Set, fd FD, maxSteps int) (Answer, *relation.Rel) {
	c := newChase(f.Arity)
	u := make([]int, f.Arity)
	v := make([]int, f.Arity)
	for i := 0; i < f.Arity; i++ {
		u[i] = c.fresh()
	}
	for i := 0; i < f.Arity; i++ {
		v[i] = c.fresh()
	}
	for _, col := range fd.Lhs {
		c.union(u[col-1], v[col-1])
	}
	c.tuples = [][]int{u, v}
	if !c.run(f, maxSteps) {
		return Unknown, nil
	}
	if c.find(u[fd.Rhs-1]) == c.find(v[fd.Rhs-1]) {
		return Implied, nil
	}
	witness := c.rel()
	if f.SatisfiedBy(witness) && !fd.SatisfiedBy(witness) {
		return NotImplied, witness
	}
	// The chase terminated but the tableau happens to satisfy the FD (the
	// initial violation was merged away): implied.
	return Implied, nil
}

// chaseIncD tests f ⊨ d by chasing a single generic tuple.
func chaseIncD(f Set, d IncD, maxSteps int) (Answer, *relation.Rel) {
	c := newChase(f.Arity)
	u := make([]int, f.Arity)
	for i := range u {
		u[i] = c.fresh()
	}
	c.tuples = [][]int{u}
	if !c.run(f, maxSteps) {
		return Unknown, nil
	}
	witness := c.rel()
	if d.SatisfiedBy(witness) {
		return Implied, nil
	}
	if f.SatisfiedBy(witness) {
		return NotImplied, witness
	}
	return Unknown, nil
}

// ProjectionLists returns the distinct Rhs column lists of the inclusion
// dependencies of the sets, sorted — the projections the Proposition 3.1
// transducer must maintain.
func ProjectionLists(sets ...Set) [][]int {
	seen := map[string][]int{}
	for _, s := range sets {
		for _, d := range s.IncDs {
			key := fmt.Sprint(d.Rhs)
			seen[key] = d.Rhs
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// ProjRelName names the state relation holding the projection of R onto the
// given 1-based columns (the paper's past-R_{j1…jm}).
func ProjRelName(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return "r" + strings.Join(parts, "-")
}
