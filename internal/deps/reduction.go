package deps

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/relation"
)

// violF and violG are the 0-ary violation outputs of both reductions.
const (
	ViolF = "violf"
	ViolG = "violg"
)

// violationRules builds the output rules deriving head (violf/violg) from
// the dependencies, reading tuples from pastRel and projections from the
// past of the named projection relations. For an FD the rule joins two
// tuples agreeing on the left-hand side and differing on the right; for an
// IncD it finds a tuple whose projection is missing.
func violationRules(head string, s Set, pastRel string, pastProj func([]int) string) dlog.Program {
	var prog dlog.Program
	vars := func(prefix string) []dlog.Term {
		out := make([]dlog.Term, s.Arity)
		for i := range out {
			out[i] = dlog.V(fmt.Sprintf("%s%d", prefix, i+1))
		}
		return out
	}
	for _, fd := range s.FDs {
		u := vars("X")
		v := vars("Y")
		for _, c := range fd.Lhs {
			v[c-1] = u[c-1] // shared variable encodes equality
		}
		body := []dlog.Literal{
			dlog.Pos(dlog.Atom{Pred: pastRel, Args: u}),
			dlog.Pos(dlog.Atom{Pred: pastRel, Args: v}),
			dlog.Neq(u[fd.Rhs-1], v[fd.Rhs-1]),
		}
		prog = append(prog, dlog.Rule{Head: dlog.NewAtom(head), Body: body})
	}
	for _, d := range s.IncDs {
		u := vars("X")
		proj := make([]dlog.Term, len(d.Lhs))
		for k, c := range d.Lhs {
			proj[k] = u[c-1]
		}
		body := []dlog.Literal{
			dlog.Pos(dlog.Atom{Pred: pastRel, Args: u}),
			dlog.Neg(dlog.Atom{Pred: pastProj(d.Rhs), Args: proj}),
		}
		prog = append(prog, dlog.Rule{Head: dlog.NewAtom(head), Body: body})
	}
	return prog
}

// Prop31Transducer builds the extended Spocus transducer of Proposition
// 3.1 for dependency sets F and G over a relation of their common arity:
// state rules store R and the projections required by the inclusion
// dependencies (the projection rules are exactly the non-Spocus extension),
// and output rules derive violf/violg. The log is {violf, violg}, and the
// log sequence (∅, {violg}) is valid iff F ⊭ G — which is why log validity
// is undecidable for this class.
func Prop31Transducer(f, g Set) (*core.Machine, error) {
	if f.Arity != g.Arity {
		return nil, fmt.Errorf("deps: arities differ")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	arity := f.Arity
	projs := ProjectionLists(f, g)

	schema := &core.Schema{
		In: relation.Schema{{Name: "r", Arity: arity}},
		Out: relation.Schema{
			{Name: ViolF, Arity: 0},
			{Name: ViolG, Arity: 0},
		},
		Log: []string{ViolF, ViolG},
	}
	stateSchema := relation.Schema{}
	var extra dlog.Program
	vars := make([]dlog.Term, arity)
	for i := range vars {
		vars[i] = dlog.V(fmt.Sprintf("X%d", i+1))
	}
	for _, p := range projs {
		name := ProjRelName(p)
		stateSchema = append(stateSchema, relation.Decl{Name: name, Arity: len(p)})
		args := make([]dlog.Term, len(p))
		for k, c := range p {
			args[k] = vars[c-1]
		}
		extra = append(extra, dlog.Rule{
			Head:       dlog.Atom{Pred: name, Args: args},
			Body:       []dlog.Literal{dlog.Pos(dlog.Atom{Pred: "r", Args: vars})},
			Cumulative: true,
		})
	}
	schema.State = stateSchema
	pastProj := func(cols []int) string { return ProjRelName(cols) }
	rules := violationRules(ViolF, f, core.Past("r"), pastProj)
	rules = append(rules, violationRules(ViolG, g, core.Past("r"), pastProj)...)
	m, err := core.NewExtended(schema, extra, rules)
	if err != nil {
		return nil, err
	}
	return m.SetName("prop31"), nil
}

// Thm34Reduction holds the two transducers of the Theorem 3.4 reduction:
// TFG constructs instances of R (and the projections needed to check the
// dependencies) one tuple at a time, flagging violations of F and G and
// policing well-formedness with ok/error; Sim is the simple transducer that
// simulates TFG's logs exactly when F ⊨ G. Thus F ⊨ G iff every valid log
// of TFG is a valid log of Sim — containment is undecidable.
type Thm34Reduction struct {
	F, G Set
	TFG  *core.Machine
	Sim  *core.Machine
}

// NewThm34Reduction builds the reduction for the given dependency sets.
func NewThm34Reduction(f, g Set) (*Thm34Reduction, error) {
	if f.Arity != g.Arity {
		return nil, fmt.Errorf("deps: arities differ")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	arity := f.Arity
	projs := ProjectionLists(f, g)

	// --- TFG ---------------------------------------------------------------
	in := relation.Schema{{Name: "r", Arity: arity}}
	for _, p := range projs {
		in = append(in, relation.Decl{Name: ProjRelName(p), Arity: len(p)})
	}
	attr := func(i int) string { return fmt.Sprintf("attr%d", i) }
	for i := 1; i <= arity; i++ {
		in = append(in, relation.Decl{Name: attr(i), Arity: 1})
	}
	out := relation.Schema{
		{Name: ViolF, Arity: 0},
		{Name: ViolG, Arity: 0},
		{Name: core.OKRel, Arity: 0},
		{Name: core.ErrorRel, Arity: 0},
	}
	logNames := []string{ViolF, ViolG, core.OKRel, core.ErrorRel}
	schema := &core.Schema{In: in, Out: out, Log: logNames}

	vars := make([]dlog.Term, arity)
	for i := range vars {
		vars[i] = dlog.V(fmt.Sprintf("X%d", i+1))
	}
	pastProj := func(cols []int) string { return core.Past(ProjRelName(cols)) }
	rules := violationRules(ViolF, f, core.Past("r"), pastProj)
	rules = append(rules, violationRules(ViolG, g, core.Past("r"), pastProj)...)

	err0 := func(body ...dlog.Literal) {
		rules = append(rules, dlog.Rule{Head: dlog.NewAtom(core.ErrorRel), Body: body})
	}
	// (1) each attribute relation holds at most one value.
	for i := 1; i <= arity; i++ {
		err0(dlog.Pos(dlog.NewAtom(attr(i), dlog.V("X"))), dlog.Pos(dlog.NewAtom(attr(i), dlog.V("Y"))), dlog.Neq(dlog.V("X"), dlog.V("Y")))
	}
	// (2) the R tuple's coordinates appear in the attribute relations.
	for i := 1; i <= arity; i++ {
		err0(dlog.Pos(dlog.Atom{Pred: "r", Args: vars}), dlog.Neg(dlog.NewAtom(attr(i), vars[i-1])))
	}
	// (3) the attribute values combine into the R tuple.
	{
		body := make([]dlog.Literal, 0, arity+1)
		for i := 1; i <= arity; i++ {
			body = append(body, dlog.Pos(dlog.NewAtom(attr(i), vars[i-1])))
		}
		body = append(body, dlog.Neg(dlog.Atom{Pred: "r", Args: vars}))
		err0(body...)
	}
	// (4) each projection input carries the projection of the R tuple.
	for _, p := range projs {
		args := make([]dlog.Term, len(p))
		for k, c := range p {
			args[k] = vars[c-1]
		}
		err0(dlog.Pos(dlog.Atom{Pred: "r", Args: vars}), dlog.Neg(dlog.Atom{Pred: ProjRelName(p), Args: args}))
	}
	// (5) each projection relation holds at most one tuple per step.
	for _, p := range projs {
		u := make([]dlog.Term, len(p))
		v := make([]dlog.Term, len(p))
		for k := range p {
			u[k] = dlog.V(fmt.Sprintf("U%d", k))
			v[k] = dlog.V(fmt.Sprintf("V%d", k))
		}
		for k := range p {
			err0(dlog.Pos(dlog.Atom{Pred: ProjRelName(p), Args: u}), dlog.Pos(dlog.Atom{Pred: ProjRelName(p), Args: v}), dlog.Neq(u[k], v[k]))
		}
	}
	// ok: every attribute relation is non-empty this step.
	{
		body := make([]dlog.Literal, 0, arity)
		for i := 1; i <= arity; i++ {
			body = append(body, dlog.Pos(dlog.NewAtom(attr(i), dlog.V(fmt.Sprintf("W%d", i)))))
		}
		rules = append(rules, dlog.Rule{Head: dlog.NewAtom(core.OKRel), Body: body})
	}
	tfg, err := core.NewSpocus(schema, rules)
	if err != nil {
		return nil, fmt.Errorf("deps: TFG: %w", err)
	}
	tfg.SetName("tfg")

	// --- Sim -----------------------------------------------------------------
	sim := core.MustParseProgram(`
transducer sim
schema
  input: simf/0, simg/0, simg2/0, simerror/0, simnotok/0;
  output: violf/0, violg/0, ok/0, error/0;
  log: violf, violg, ok, error;
state rules
  past-simf +:- simf;
  past-simg +:- simg;
  past-simg2 +:- simg2;
  past-simerror +:- simerror;
  past-simnotok +:- simnotok;
output rules
  violf :- simg;
  violg :- simg;
  violf :- simf;
  error :- simerror;
  violg :- past-simerror, simg2;
  ok :- NOT simnotok;
  violg :- past-simnotok, simg2;
`)
	return &Thm34Reduction{F: f, G: g, TFG: tfg, Sim: sim}, nil
}

// WellFormedInputs produces the input sequence inserting the instance into
// TFG one tuple at a time, with the attribute and projection relations
// filled as the well-formedness rules demand.
func (r *Thm34Reduction) WellFormedInputs(inst *relation.Rel) relation.Sequence {
	projs := ProjectionLists(r.F, r.G)
	var seq relation.Sequence
	for _, t := range inst.Tuples() {
		step := relation.NewInstance()
		step.Add("r", t)
		for i, c := range t {
			step.Add(fmt.Sprintf("attr%d", i+1), relation.Tuple{c})
		}
		for _, p := range projs {
			proj := make(relation.Tuple, len(p))
			for k, c := range p {
				proj[k] = t[c-1]
			}
			step.Add(ProjRelName(p), proj)
		}
		seq = append(seq, step)
	}
	return seq
}

// SimInputsForLog constructs Sim inputs reproducing a TFG log, valid
// whenever F ⊨ G (on non-well-formed logs it uses the simerror/simnotok
// escape hatches). It returns an error if the log is one Sim cannot imitate
// — which, by the reduction, happens exactly on logs witnessing F ⊭ G.
func (r *Thm34Reduction) SimInputsForLog(log relation.Sequence) (relation.Sequence, error) {
	var seq relation.Sequence
	escaped := false
	for i, step := range log {
		escapedBefore := escaped // the hatches act through past-state
		in := relation.NewInstance()
		violF := step.Rel(ViolF).Len() > 0
		violG := step.Rel(ViolG).Len() > 0
		ok := step.Rel(core.OKRel).Len() > 0
		errOut := step.Rel(core.ErrorRel).Len() > 0
		if !ok {
			in.Add("simnotok", relation.Tuple{})
			escaped = true
		}
		if errOut {
			in.Add("simerror", relation.Tuple{})
			escaped = true
		}
		switch {
		case violF && violG:
			in.Add("simg", relation.Tuple{})
		case violF:
			in.Add("simf", relation.Tuple{})
		case violG:
			// violg without violf: only expressible after an escape hatch
			// opened at some strictly earlier step.
			if !escapedBefore {
				return nil, fmt.Errorf("deps: step %d: violg without violf on a well-formed log — F ⊭ G witness", i+1)
			}
			in.Add("simg2", relation.Tuple{})
		}
		seq = append(seq, in)
	}
	return seq, nil
}
