package scenario

import (
	"encoding/json"
	"testing"

	"repro/internal/compose"
	"repro/internal/models"
)

// FuzzParse throws arbitrary bytes at the scenario-spec parser. The
// invariant under fuzz: Parse either rejects the input or returns a spec
// whose Plan succeeds with exactly the declared session count and whose
// scripts are callable — no panics, no validated-but-unplannable specs.
//
// The seed corpus spans the interesting structure: the whole builtin
// fleet, inline specs for the generated marketplace and fraud networks,
// and near-miss corruptions (duplicate nodes, wire arity mismatches,
// unknown wire endpoints, cyclic wiring — the last is legal).
func FuzzParse(f *testing.F) {
	seed := func(sp *Spec) {
		data, err := json.Marshal(sp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, sp := range Fleet() {
		seed(sp)
	}

	inline := func(mut func(s *compose.Spec)) *Spec {
		cs := models.Network("marketplace")
		if mut != nil {
			mut(cs)
		}
		return &Spec{Name: "fz", Sessions: 2, Steps: 3, Mix: []Element{{Spec: cs}}}
	}
	seed(inline(nil))
	seed(&Spec{Name: "fz-fraud", Sessions: 2, Steps: 3, Mix: []Element{{Spec: models.Network("fraud")}}})
	// Duplicate node.
	seed(inline(func(s *compose.Spec) { s.Nodes = append(s.Nodes, s.Nodes[0]) }))
	// Wire arity mismatch.
	seed(inline(func(s *compose.Spec) { s.Wires[0].Input = "pay" }))
	// Wire to a node that doesn't exist.
	seed(inline(func(s *compose.Spec) { s.Wires[0].To = "nobody" }))
	// Self-loop (legal under unit delay).
	seed(&Spec{Name: "fz-cycle", Sessions: 1, Steps: 2, Mix: []Element{{Spec: &compose.Spec{
		Nodes: []compose.NodeSpec{{Name: "echo", Src: models.NetShipperSrc}},
		Wires: []compose.WireSpec{{From: "echo", Output: "shipped", To: "echo", Input: "request"}},
	}}}})
	// Open-loop arrivals and per-element step overrides.
	seed(&Spec{Name: "fz-open", Sessions: 4, Steps: 2, Arrival: Open, Rate: 50,
		Mix: []Element{{Model: "auction", Weight: 3, Steps: 6}, {Network: "customization"}}})
	// Junk.
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"x","sessions":1,"steps":1,"mix":[{"model":"short","network":"fraud"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		plans, err := sp.Plan("fz")
		if err != nil {
			t.Fatalf("validated spec failed to plan: %v\nspec: %s", err, data)
		}
		if len(plans) != sp.Sessions {
			t.Fatalf("planned %d sessions for %d declared\nspec: %s", len(plans), sp.Sessions, data)
		}
		for _, p := range plans {
			if p.IsNetwork() == (p.Model != "") {
				t.Fatalf("plan %s is neither model nor network\nspec: %s", p.ID, data)
			}
			// Scripts are callable over the full step range (probe a few).
			for _, j := range []int{0, 1, p.Steps - 1} {
				if j < 0 {
					continue
				}
				if p.IsNetwork() {
					p.NetInput(j)
				} else {
					p.Input(j)
				}
			}
		}
		for i := 0; i < sp.Sessions; i++ {
			if off := sp.StartOffset(i); off < 0 {
				t.Fatalf("negative start offset %v\nspec: %s", off, data)
			}
		}
	})
}
