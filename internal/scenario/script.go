package scenario

import (
	"fmt"

	"repro/internal/compose"
	"repro/internal/models"
	"repro/internal/relation"
)

// Deterministic input scripts, one per registry model and generated
// network. Scripts are pure functions of (session index, step index):
// repeated runs of a scenario offer byte-identical stimulus, so reported
// throughput differences are the serving stack's, not the workload's.

// catalogSize is the shop-family catalogue: big enough that the order/pay
// loop doesn't immediately revisit items (which the strict models flag as
// errors — errors don't stop a session, but a mostly-well-behaved script
// keeps output volume representative).
const catalogSize = 12

func catalogItem(p int) (item, price relation.Const) {
	return relation.Const(fmt.Sprintf("item-%02d", p)), relation.Const(fmt.Sprint(100 + p))
}

// catalogDB is the shop-family database: catalogSize priced, available
// products.
func catalogDB() relation.Instance {
	db := relation.NewInstance()
	for p := 0; p < catalogSize; p++ {
		item, price := catalogItem(p)
		db.Add("price", relation.Tuple{item, price})
		db.Add("available", relation.Tuple{item})
	}
	return db
}

// modelDB is the database a scenario opens the model with.
func modelDB(model string) relation.Instance {
	switch model {
	case "short", "friendly", "restricted", "guarded", "payfirst", "strict", "stricter":
		return catalogDB()
	default:
		return models.DefaultDB(model)
	}
}

// shop is the Figure 1 loop: order an item, pay for it next step, moving
// through the catalogue at a per-session offset.
func shop(i, j int) relation.Instance {
	p := (i + j/2) % catalogSize
	item, price := catalogItem(p)
	in := relation.NewInstance()
	if j%2 == 0 {
		in.Add("order", relation.Tuple{item})
	} else {
		in.Add("pay", relation.Tuple{item, price})
	}
	return in
}

// modelScript returns the step script for one session of the model.
func modelScript(model string, i int) func(j int) relation.Instance {
	switch model {
	case "short", "restricted", "strict", "stricter":
		return func(j int) relation.Instance { return shop(i, j) }
	case "friendly":
		// The shop loop with a pending-bills reminder sweep every fifth step.
		return func(j int) relation.Instance {
			if j%5 == 4 {
				in := relation.NewInstance()
				in.Ensure("pending-bills", 0).Add(relation.Tuple{})
				return in
			}
			return shop(i, j)
		}
	case "guarded", "payfirst":
		// The shop loop plus an occasional cancellation of a previously
		// ordered item, exercising the cancellation guards.
		return func(j int) relation.Instance {
			if j%7 == 6 {
				item, _ := catalogItem((i + j/2 - 1) % catalogSize)
				in := relation.NewInstance()
				in.Add("cancel", relation.Tuple{item})
				return in
			}
			return shop(i, j)
		}
	case "abstar":
		// A well-formed ab* prefix: one a, then b forever.
		return func(j int) relation.Instance {
			in := relation.NewInstance()
			if j == 0 {
				in.Ensure("ia", 0).Add(relation.Tuple{})
			} else {
				in.Ensure("ib", 0).Add(relation.Tuple{})
			}
			return in
		}
	case "auction":
		// Three-step lots: list, bid (bidders from AuctionDB), accept.
		return func(j int) relation.Instance {
			lot := relation.Const(fmt.Sprintf("lot-%03d", j/3))
			bidder := relation.Const([]string{"alice", "bob"}[(i+j/3)%2])
			in := relation.NewInstance()
			switch j % 3 {
			case 0:
				in.Add("list", relation.Tuple{lot})
			case 1:
				in.Add("bid", relation.Tuple{lot, bidder})
			default:
				in.Add("accept", relation.Tuple{lot, bidder})
			}
			return in
		}
	case "subscription":
		// Four-step cycles per periodical: subscribe, remit, remind, cancel.
		return func(j int) relation.Instance {
			rates := [][2]relation.Const{{"economist", "120"}, {"nature", "199"}}
			r := rates[(i+j/4)%2]
			in := relation.NewInstance()
			switch j % 4 {
			case 0:
				in.Add("subscribe", relation.Tuple{r[0]})
			case 1:
				in.Add("remit", relation.Tuple{r[0], r[1]})
			case 2:
				in.Ensure("remind", 0).Add(relation.Tuple{})
			default:
				in.Add("cancel", relation.Tuple{r[0]})
			}
			return in
		}
	default:
		// Unknown models are rejected by Validate; an empty script keeps the
		// zero value total (never reached in a validated plan).
		return func(int) relation.Instance { return relation.NewInstance() }
	}
}

// networkScript cycles the network's canonical conversation (see
// models.NetworkScript) with a rotating product choice: each full cycle
// re-runs the conversation for the next product.
func networkScript(network string, i int) func(j int) compose.StepInputs {
	products := models.NetProducts()
	// The canonical script's length is the conversation period.
	period := len(models.NetworkScript(network, products[0]))
	cache := map[string][]compose.StepInputs{}
	return func(j int) compose.StepInputs {
		product := products[(i+j/period)%len(products)]
		script, ok := cache[product]
		if !ok {
			script = models.NetworkScript(network, product)
			cache[product] = script
		}
		return script[j%period]
	}
}
