// Package scenario defines the benchmark scenario fleet: named, validated
// workload specs mixing the registry's single-transducer models with
// generated transducer networks, under closed- or open-loop arrival.
//
// A scenario is declarative (JSON) and deterministic: the same spec always
// plans the same sessions with the same input scripts, so bench runs are
// comparable across machines and commits. The fleet in Fleet() is the
// committed baseline workload behind BENCH_scenarios.json.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/compose"
	"repro/internal/models"
	"repro/internal/relation"
)

// Spec is one named scenario: how many sessions, how many steps each, how
// they arrive, and what mix of models and networks they run.
type Spec struct {
	Name string `json:"name"`
	// Info is a human-oriented one-liner carried into the bench report.
	Info string `json:"info,omitempty"`
	// Sessions is the total session count, apportioned over Mix by weight.
	Sessions int `json:"sessions"`
	// Steps is the default steps per session (Element.Steps overrides).
	Steps int `json:"steps"`
	// Arrival is "closed" (default: all sessions start at once and step
	// flat-out) or "open" (session i starts i/Rate seconds into the run,
	// regardless of how earlier sessions are progressing).
	Arrival string `json:"arrival,omitempty"`
	// Rate is the open-loop arrival rate in sessions per second.
	Rate float64 `json:"rate,omitempty"`
	// Mix is the weighted blend of workload elements.
	Mix []Element `json:"mix"`
}

// Element is one ingredient of a scenario mix: exactly one of a registry
// model name, a generated network name, or an inline network spec.
type Element struct {
	Model   string        `json:"model,omitempty"`
	Network string        `json:"network,omitempty"`
	Spec    *compose.Spec `json:"spec,omitempty"`
	// Weight apportions Spec.Sessions (default 1; 0 means 1).
	Weight int `json:"weight,omitempty"`
	// Steps overrides the scenario-wide steps per session for this element.
	Steps int `json:"steps,omitempty"`
}

// Arrival patterns.
const (
	Closed = "closed"
	Open   = "open"
)

// Sanity bounds: a spec is a workload description, not an attack surface;
// anything past these is a typo (or a fuzzer).
const (
	maxSessions = 100_000
	maxSteps    = 100_000
)

// Parse decodes and validates a single scenario spec.
func Parse(data []byte) (*Spec, error) {
	var sp Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// ParseFleet decodes and validates a JSON array of scenario specs,
// additionally rejecting duplicate scenario names.
func ParseFleet(data []byte) ([]*Spec, error) {
	var fleet []*Spec
	if err := json.Unmarshal(data, &fleet); err != nil {
		return nil, fmt.Errorf("scenario fleet: %w", err)
	}
	seen := map[string]bool{}
	for i, sp := range fleet {
		if sp == nil {
			return nil, fmt.Errorf("scenario fleet: entry %d is null", i)
		}
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		if seen[sp.Name] {
			return nil, fmt.Errorf("scenario fleet: duplicate scenario %q", sp.Name)
		}
		seen[sp.Name] = true
	}
	return fleet, nil
}

// Validate checks the spec against the model registry and the network
// generators, building inline network specs so that malformed wiring
// (unknown nodes, arity mismatches, duplicate node names) is rejected here
// rather than at open time. Self-wires and cyclic wiring are legal — unit
// delay makes every topology well-defined.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if sp.Sessions < 1 || sp.Sessions > maxSessions {
		return fmt.Errorf("scenario %s: sessions must be in [1, %d], got %d", sp.Name, maxSessions, sp.Sessions)
	}
	if sp.Steps < 1 || sp.Steps > maxSteps {
		return fmt.Errorf("scenario %s: steps must be in [1, %d], got %d", sp.Name, maxSteps, sp.Steps)
	}
	switch sp.Arrival {
	case "", Closed:
		if sp.Rate != 0 {
			return fmt.Errorf("scenario %s: rate applies only to open arrival", sp.Name)
		}
	case Open:
		if sp.Rate <= 0 {
			return fmt.Errorf("scenario %s: open arrival needs rate > 0", sp.Name)
		}
	default:
		return fmt.Errorf("scenario %s: arrival must be %q or %q, got %q", sp.Name, Closed, Open, sp.Arrival)
	}
	if len(sp.Mix) == 0 {
		return fmt.Errorf("scenario %s: mix is empty", sp.Name)
	}
	for i := range sp.Mix {
		el := &sp.Mix[i]
		kinds := 0
		if el.Model != "" {
			kinds++
		}
		if el.Network != "" {
			kinds++
		}
		if el.Spec != nil {
			kinds++
		}
		if kinds != 1 {
			return fmt.Errorf("scenario %s: mix[%d] needs exactly one of model, network, or spec", sp.Name, i)
		}
		if el.Weight < 0 {
			return fmt.Errorf("scenario %s: mix[%d] weight must be >= 0", sp.Name, i)
		}
		if el.Steps < 0 || el.Steps > maxSteps {
			return fmt.Errorf("scenario %s: mix[%d] steps must be in [0, %d]", sp.Name, i, maxSteps)
		}
		switch {
		case el.Model != "":
			if models.Get(el.Model) == nil {
				return fmt.Errorf("scenario %s: mix[%d]: unknown model %q", sp.Name, i, el.Model)
			}
		case el.Network != "":
			if models.Network(el.Network) == nil {
				return fmt.Errorf("scenario %s: mix[%d]: unknown network %q", sp.Name, i, el.Network)
			}
		default:
			if _, err := el.Spec.Build(models.Resolve); err != nil {
				return fmt.Errorf("scenario %s: mix[%d]: bad network spec: %w", sp.Name, i, err)
			}
		}
	}
	total := 0
	for i := range sp.Mix {
		total += sp.Mix[i].weight()
	}
	if total == 0 {
		return fmt.Errorf("scenario %s: all mix weights are zero", sp.Name)
	}
	return nil
}

func (el *Element) weight() int {
	if el.Weight == 0 {
		return 1
	}
	return el.Weight
}

// label names an element inside session IDs and reports.
func (el *Element) label() string {
	switch {
	case el.Model != "":
		return el.Model
	case el.Network != "":
		return "net-" + el.Network
	default:
		return "net-inline"
	}
}

// StartOffset is when session i (of Sessions) begins relative to the run
// start: zero under closed loop, i/Rate under open arrival.
func (sp *Spec) StartOffset(i int) time.Duration {
	if sp.Arrival != Open {
		return 0
	}
	return time.Duration(float64(i) / sp.Rate * float64(time.Second))
}

// SessionPlan is one planned session: its identity (a model + database, or
// a network spec) and its deterministic input script. Exactly one of
// Model/Network is set.
type SessionPlan struct {
	ID      string
	Element string // the mix element's label, for per-element reporting
	Model   string
	DB      relation.Instance
	Network *compose.Spec
	Steps   int

	input func(j int) relation.Instance
	netin func(j int) compose.StepInputs
}

// IsNetwork reports whether the plan opens a network session.
func (p *SessionPlan) IsNetwork() bool { return p.Network != nil }

// Input is the j-th (0-based) step's payload for a model session.
func (p *SessionPlan) Input(j int) relation.Instance { return p.input(j) }

// NetInput is the j-th (0-based) joint step's external inputs for a
// network session.
func (p *SessionPlan) NetInput(j int) compose.StepInputs { return p.netin(j) }

// Counts apportions Sessions over the mix by weight (largest remainder,
// ties to the earlier element), so every run of a spec plans the same
// per-element session counts.
func (sp *Spec) Counts() []int {
	total := 0
	for i := range sp.Mix {
		total += sp.Mix[i].weight()
	}
	counts := make([]int, len(sp.Mix))
	rems := make([]int, len(sp.Mix))
	assigned := 0
	for i := range sp.Mix {
		w := sp.Mix[i].weight()
		counts[i] = sp.Sessions * w / total
		rems[i] = sp.Sessions * w % total
		assigned += counts[i]
	}
	for assigned < sp.Sessions {
		best := -1
		for i := range rems {
			if best < 0 || rems[i] > rems[best] {
				best = i
			}
		}
		counts[best]++
		rems[best] = -1
		assigned++
	}
	return counts
}

// Plan expands the spec into its session plans, IDs prefixed with prefix.
// The expansion is a pure function of (spec, prefix): scripts are
// deterministic in (session index, step index).
func (sp *Spec) Plan(prefix string) ([]*SessionPlan, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	counts := sp.Counts()
	plans := make([]*SessionPlan, 0, sp.Sessions)
	for e := range sp.Mix {
		el := &sp.Mix[e]
		steps := sp.Steps
		if el.Steps > 0 {
			steps = el.Steps
		}
		for i := 0; i < counts[e]; i++ {
			p, err := el.plan(fmt.Sprintf("%s-%s-%s-%04d", prefix, sp.Name, el.label(), i), i, steps)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: mix[%d]: %w", sp.Name, e, err)
			}
			plans = append(plans, p)
		}
	}
	return plans, nil
}

func (el *Element) plan(id string, i, steps int) (*SessionPlan, error) {
	p := &SessionPlan{ID: id, Element: el.label(), Steps: steps}
	switch {
	case el.Model != "":
		p.Model = el.Model
		p.DB = modelDB(el.Model)
		p.input = modelScript(el.Model, i)
	case el.Network != "":
		p.Network = models.Network(el.Network)
		p.netin = networkScript(el.Network, i)
	default:
		p.Network = el.Spec.Clone()
		// Inline specs carry no script convention: the workload is the
		// network's own wiring dynamics under empty external stimulus.
		p.netin = func(int) compose.StepInputs { return compose.StepInputs{} }
	}
	return p, nil
}

// Fleet is the committed baseline workload: the four scenario families the
// acceptance bench (BENCH_scenarios.json) reports on.
func Fleet() []*Spec {
	mix := make([]Element, 0, len(models.Names()))
	for _, name := range models.Names() {
		mix = append(mix, Element{Model: name})
	}
	return []*Spec{
		{
			Name:     "registry-mix",
			Info:     "even closed-loop blend of all registry models",
			Sessions: 120,
			Steps:    24,
			Mix:      mix,
		},
		{
			Name:     "marketplace",
			Info:     "customer/supplier/shipper networks, closed loop",
			Sessions: 32,
			Steps:    21,
			Mix:      []Element{{Network: "marketplace"}},
		},
		{
			Name:     "fraud",
			Info:     "customer/supplier/monitor networks, closed loop",
			Sessions: 32,
			Steps:    18,
			Mix:      []Element{{Network: "fraud"}},
		},
		{
			Name:    "mixed-open",
			Info:    "open-loop arrivals over a model+network blend",
			Arrival: Open,
			Rate:    120,
			Sessions: 60,
			Steps:    12,
			Mix: []Element{
				{Model: "short", Weight: 2},
				{Network: "marketplace", Weight: 1, Steps: 14},
				{Network: "customization", Weight: 1, Steps: 18},
			},
		},
	}
}
