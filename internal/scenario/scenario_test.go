package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/compose"
	"repro/internal/models"
	"repro/internal/relation"
)

// TestFleetValid: the committed fleet validates, plans, and covers the four
// required families (model mix, marketplace, fraud, mixed open-loop).
func TestFleetValid(t *testing.T) {
	fleet := Fleet()
	if len(fleet) < 4 {
		t.Fatalf("fleet has %d scenarios, want >= 4", len(fleet))
	}
	names := map[string]bool{}
	for _, sp := range fleet {
		if err := sp.Validate(); err != nil {
			t.Errorf("fleet scenario %s invalid: %v", sp.Name, err)
		}
		names[sp.Name] = true
		plans, err := sp.Plan("t")
		if err != nil {
			t.Fatalf("plan %s: %v", sp.Name, err)
		}
		if len(plans) != sp.Sessions {
			t.Errorf("%s planned %d sessions, want %d", sp.Name, len(plans), sp.Sessions)
		}
	}
	for _, want := range []string{"registry-mix", "marketplace", "fraud", "mixed-open"}  {
		if !names[want] {
			t.Errorf("fleet is missing scenario %q", want)
		}
	}
	// The fleet round-trips through its own JSON form.
	data, err := json.Marshal(fleet)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseFleet(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(fleet) {
		t.Fatalf("round trip lost scenarios: %d != %d", len(again), len(fleet))
	}
}

// TestCounts: largest-remainder apportionment is exact and deterministic.
func TestCounts(t *testing.T) {
	sp := &Spec{
		Name:     "c",
		Sessions: 10,
		Steps:    1,
		Mix: []Element{
			{Model: "short", Weight: 3},
			{Model: "friendly", Weight: 3},
			{Model: "strict", Weight: 1},
		},
	}
	counts := sp.Counts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != sp.Sessions {
		t.Fatalf("counts %v sum to %d, want %d", counts, total, sp.Sessions)
	}
	// 10*3/7 = 4 rem 2, 10*3/7 = 4 rem 2, 10*1/7 = 1 rem 3: the leftover
	// session goes to the largest remainder — pin the deterministic answer.
	want := []int{4, 4, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
}

// TestValidateRejections: each malformed spec is rejected with a
// recognizable error.
func TestValidateRejections(t *testing.T) {
	ok := func() *Spec {
		return &Spec{Name: "v", Sessions: 2, Steps: 3, Mix: []Element{{Model: "short"}}}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"zero sessions", func(s *Spec) { s.Sessions = 0 }, "sessions"},
		{"huge sessions", func(s *Spec) { s.Sessions = maxSessions + 1 }, "sessions"},
		{"zero steps", func(s *Spec) { s.Steps = 0 }, "steps"},
		{"bad arrival", func(s *Spec) { s.Arrival = "poisson" }, "arrival"},
		{"open without rate", func(s *Spec) { s.Arrival = Open }, "rate"},
		{"closed with rate", func(s *Spec) { s.Rate = 5 }, "rate applies only"},
		{"empty mix", func(s *Spec) { s.Mix = nil }, "mix is empty"},
		{"unknown model", func(s *Spec) { s.Mix[0].Model = "nope" }, "unknown model"},
		{"unknown network", func(s *Spec) { s.Mix[0] = Element{Network: "nope"} }, "unknown network"},
		{"model and network", func(s *Spec) { s.Mix[0].Network = "fraud" }, "exactly one"},
		{"neither", func(s *Spec) { s.Mix[0] = Element{} }, "exactly one"},
		{"negative weight", func(s *Spec) { s.Mix[0].Weight = -1 }, "weight"},
		{"zero total weight", func(s *Spec) { s.Mix[0].Weight = 0; s.Sessions = 1; s.Mix[0].Model = "short" }, ""},
	}
	for _, tc := range cases {
		sp := ok()
		tc.mut(sp)
		err := sp.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateInlineSpec: inline network specs are built during validation,
// so wire arity mismatches and duplicate nodes are caught before any
// session opens; cyclic wiring is legal.
func TestValidateInlineSpec(t *testing.T) {
	base := func() *Spec {
		return &Spec{Name: "i", Sessions: 1, Steps: 2, Mix: []Element{{Spec: models.Network("marketplace")}}}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("inline marketplace spec rejected: %v", err)
	}

	dup := base()
	dup.Mix[0].Spec.Nodes = append(dup.Mix[0].Spec.Nodes, dup.Mix[0].Spec.Nodes[0])
	if err := dup.Validate(); err == nil {
		t.Error("duplicate node accepted")
	}

	arity := base()
	arity.Mix[0].Spec.Wires[0].Input = "pay" // order/1 wired into pay/2
	if err := arity.Validate(); err == nil {
		t.Error("wire arity mismatch accepted")
	}

	ghost := base()
	ghost.Mix[0].Spec.Wires[0].To = "nobody"
	if err := ghost.Validate(); err == nil {
		t.Error("wire to unknown node accepted")
	}

	// A self-loop is legal under unit delay.
	cyc := &Spec{Name: "cyc", Sessions: 1, Steps: 2, Mix: []Element{{Spec: &compose.Spec{
		Nodes: []compose.NodeSpec{{Name: "echo", Src: models.NetShipperSrc}},
		Wires: []compose.WireSpec{{From: "echo", Output: "shipped", To: "echo", Input: "request"}},
	}}}}
	if err := cyc.Validate(); err != nil {
		t.Errorf("cyclic wiring rejected: %v", err)
	}
}

// TestPlanDeterminism: two plans of the same spec are identical — IDs,
// steps, and the scripts themselves, step by step.
func TestPlanDeterminism(t *testing.T) {
	for _, sp := range Fleet() {
		a, err := sp.Plan("d")
		if err != nil {
			t.Fatal(err)
		}
		b, err := sp.Plan("d")
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Steps != b[i].Steps || a[i].IsNetwork() != b[i].IsNetwork() {
				t.Fatalf("%s plan %d differs: %+v vs %+v", sp.Name, i, a[i], b[i])
			}
			for j := 0; j < a[i].Steps; j++ {
				var da, db []byte
				if a[i].IsNetwork() {
					da, _ = json.Marshal(a[i].NetInput(j))
					db, _ = json.Marshal(b[i].NetInput(j))
				} else {
					da, _ = json.Marshal(a[i].Input(j))
					db, _ = json.Marshal(b[i].Input(j))
				}
				if string(da) != string(db) {
					t.Fatalf("%s session %s step %d differs: %s vs %s", sp.Name, a[i].ID, j, da, db)
				}
			}
		}
	}
}

// TestScriptsRunnable: every model script actually steps its machine
// (inputs match the schema), and every network script steps its network.
func TestScriptsRunnable(t *testing.T) {
	for _, name := range models.Names() {
		m := models.Get(name)
		state := relation.NewInstance()
		db := modelDB(name)
		script := modelScript(name, 0)
		for j := 0; j < 12; j++ {
			in := script(j)
			for rel, r := range in {
				a, ok := m.Schema().In.Arity(rel)
				if !ok {
					t.Fatalf("model %s step %d: %s is not an input relation", name, j, rel)
				}
				if r.Len() > 0 && r.Arity() != a {
					t.Fatalf("model %s step %d: %s arity %d, want %d", name, j, rel, r.Arity(), a)
				}
			}
			next, _, err := m.Step(in, state, db)
			if err != nil {
				t.Fatalf("model %s step %d: %v", name, j, err)
			}
			state = next
		}
	}
	for _, name := range models.NetworkNames() {
		nw, err := models.Network(name).Build(models.Resolve)
		if err != nil {
			t.Fatal(err)
		}
		nw.Start()
		script := networkScript(name, 0)
		for j := 0; j < 20; j++ {
			if _, err := nw.StepOnce(script(j)); err != nil {
				t.Fatalf("network %s step %d: %v", name, j, err)
			}
		}
	}
}

// TestStartOffset: closed loop starts everyone at zero; open loop spaces
// arrivals at 1/rate.
func TestStartOffset(t *testing.T) {
	closed := &Spec{Arrival: Closed}
	if closed.StartOffset(7) != 0 {
		t.Error("closed-loop start offset should be zero")
	}
	open := &Spec{Arrival: Open, Rate: 100}
	if got, want := open.StartOffset(50), 500*time.Millisecond; got != want {
		t.Errorf("open-loop offset = %v, want %v", got, want)
	}
}
