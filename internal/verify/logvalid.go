package verify

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/fol"
	"repro/internal/relation"
	"repro/internal/sat"
)

// Options tune the decision procedures.
type Options struct {
	// UnknownDB treats the database relations as unknown (free predicates):
	// the procedure decides whether there EXISTS a database making the
	// answer positive, the variation noted after Theorem 3.1.
	UnknownDB bool
	// MaxConflicts bounds the SAT search; 0 means unlimited. When the
	// budget is exhausted the procedures return ErrBudget.
	MaxConflicts int64
	// SkipReplay disables the operational replay of witnesses (used only by
	// benchmarks measuring pure decision time).
	SkipReplay bool
	// Parallelism is the number of SAT subproblems solved concurrently by
	// procedures that decompose into independent questions (per-condition,
	// per-clause, per-run-length, per-candidate). 0 and 1 mean strictly
	// sequential evaluation in declaration order; negative means
	// GOMAXPROCS. The decision (and any error under an unlimited budget) is
	// identical to the sequential one; the witness or counterexample may
	// differ, since the first subproblem to find one wins and cancels the
	// rest. See DESIGN.md §3.4.
	Parallelism int
	// Timeout bounds the wall-clock time of one procedure call; 0 means no
	// deadline. An expired deadline surfaces as context.DeadlineExceeded.
	Timeout time.Duration
	// Context, when non-nil, cancels in-flight grounding and SAT search; a
	// cancelled call returns the context's error. Nil means Background.
	Context context.Context
	// Cache, when non-nil, memoizes solved subproblems keyed by their full
	// grounding input, so repeated questions (same transducer, sentence, and
	// run length across procedures or calls) skip the solver entirely. It
	// is safe for concurrent use and may be shared between procedures.
	Cache *Cache
}

func (o *Options) orDefault() *Options {
	if o == nil {
		return &Options{}
	}
	return o
}

// begin derives the call's context from Options.Context and Options.Timeout.
// The returned cancel func must be called when the procedure finishes.
func (o *Options) begin() (context.Context, context.CancelFunc) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Timeout > 0 {
		return context.WithTimeout(ctx, o.Timeout)
	}
	return context.WithCancel(ctx)
}

// ErrBudget is returned when MaxConflicts is exhausted before a decision.
var ErrBudget = fmt.Errorf("verify: SAT conflict budget exhausted")

// Stats reports the size of a grounded decision problem.
type Stats struct {
	DomainSize int
	Vars       int
	Clauses    int
}

func statsOf(res *fol.Result) Stats {
	return Stats{DomainSize: len(res.Domain), Vars: res.Vars, Clauses: res.Clauses}
}

// LogValidityResult is the outcome of a Theorem 3.1 check.
type LogValidityResult struct {
	// Valid reports whether some input sequence generates the log.
	Valid bool
	// Witness is such an input sequence (when Valid).
	Witness relation.Sequence
	// WitnessDB is the database found by the solver when Options.UnknownDB
	// was set (nil otherwise).
	WitnessDB relation.Instance
	Stats     Stats
}

// LogValidity decides, per Theorem 3.1, whether the given log sequence is
// valid for the Spocus transducer m over database db: whether there exists
// an input sequence I₁…Iₙ with L₁…Lₙ = log(I₁…Iₙ). The log must use only
// logged relations. Complexity is NEXPTIME in general and Σ₂ᵖ for fixed
// schema, witnessed by the grounding statistics in the result.
func LogValidity(m *core.Machine, db relation.Instance, log relation.Sequence, opts *Options) (*LogValidityResult, error) {
	opts = opts.orDefault()
	ctx, cancel := opts.begin()
	defer cancel()
	return logValidity(ctx, m, db, log, opts)
}

func logValidity(ctx context.Context, m *core.Machine, db relation.Instance, log relation.Sequence, opts *Options) (*LogValidityResult, error) {
	if err := requireSpocus(m); err != nil {
		return nil, err
	}
	s := m.Schema()
	for j, inst := range log {
		for name, r := range inst {
			if !s.Logged(name) {
				return nil, fmt.Errorf("verify: log step %d uses unlogged relation %s", j+1, name)
			}
			if a, _ := s.Arity(name); r.Len() > 0 && r.Arity() != a {
				return nil, fmt.Errorf("verify: log step %d: relation %s has arity %d, schema says %d", j+1, name, r.Arity(), a)
			}
		}
	}
	n := len(log)
	if n == 0 {
		return &LogValidityResult{Valid: true, Witness: relation.Sequence{}}, nil
	}

	t := newTranslator(m, "")
	var conjuncts []fol.Formula
	for j := 1; j <= n; j++ {
		for _, name := range s.Log {
			arity, _ := s.Arity(name)
			want := log[j-1].Rel(name)
			var tuples []relation.Tuple
			if want != nil {
				tuples = want.Tuples()
			}
			valueAt, vars, err := logValueFormula(t, s, name, arity, j)
			if err != nil {
				return nil, err
			}
			// Membership: every logged tuple is in the relation's value.
			for _, tup := range tuples {
				args := tupleTerms(tup)
				f, err := valueAt(args)
				if err != nil {
					return nil, err
				}
				conjuncts = append(conjuncts, f)
			}
			// Inclusion: the relation's value holds only logged tuples.
			varTerms := make([]dlog.Term, arity)
			for i := range varTerms {
				varTerms[i] = dlog.V(vars[i])
			}
			val, err := valueAt(varTerms)
			if err != nil {
				return nil, err
			}
			var allowed []fol.Formula
			for _, tup := range tuples {
				var eqs []fol.Formula
				for i, c := range tup {
					eqs = append(eqs, fol.Eq(varTerms[i], dlog.C(string(c))))
				}
				allowed = append(allowed, fol.AndF(eqs...))
			}
			conjuncts = append(conjuncts, fol.ForallF(vars, fol.Implies(val, fol.OrF(allowed...))))
		}
	}

	free := map[string]int{}
	fixed := map[string]*relation.Rel{}
	t.freePreds(n, free)
	if opts.UnknownDB {
		dbPreds(m, nil, fixed, free)
	} else {
		dbPreds(m, db, fixed, free)
	}

	res, err := solveSub(ctx, opts, &fol.Problem{
		Formula:     fol.AndF(conjuncts...),
		Fixed:       fixed,
		Free:        free,
		ExtraConsts: m.Constants(),
		Tag:         m.Fingerprint(),
	})
	if err != nil {
		return nil, err
	}
	out := &LogValidityResult{Stats: statsOf(res)}
	if res.Status == sat.Unsat {
		return out, nil
	}
	out.Valid = true
	out.Witness = t.extractInputs(res.Model, n)
	replayDB := db
	if opts.UnknownDB {
		out.WitnessDB = relation.NewInstance()
		for _, d := range s.DB {
			if r, ok := res.Model[d.Name]; ok {
				out.WitnessDB[d.Name] = r.Clone()
			}
		}
		replayDB = out.WitnessDB
	}
	if !opts.SkipReplay {
		if err := replayLogCheck(m, replayDB, out.Witness, log); err != nil {
			return nil, fmt.Errorf("verify: internal error: witness failed replay: %w", err)
		}
		out.Witness = shrinkInputs(out.Witness, func(cand relation.Sequence) bool {
			return len(cand) == len(log) && replayLogCheck(m, replayDB, cand, log) == nil
		})
	}
	return out, nil
}

// LogValidityBatch decides Theorem 3.1 for many candidate logs over the
// same transducer and database, fanning the per-candidate SAT subproblems
// across Options.Parallelism workers (the production shape: one log per
// customer session, millions of sessions). Results are positionally aligned
// with logs. Unlike the single-log procedure, every candidate is decided —
// there is no early termination — and the first error cancels the
// remaining work. Sharing an Options.Cache across calls lets repeated
// sessions skip the solver entirely.
func LogValidityBatch(m *core.Machine, db relation.Instance, logs []relation.Sequence, opts *Options) ([]*LogValidityResult, error) {
	opts = opts.orDefault()
	ctx, cancel := opts.begin()
	defer cancel()
	return forEach(ctx, opts.workers(), len(logs), func(ctx context.Context, i int) (*LogValidityResult, error) {
		return logValidity(ctx, m, db, logs[i], opts)
	})
}

// logValueFormula returns a function giving the formula for "tuple ∈ value
// of logged relation name at step j", along with fresh universal variable
// names for the inclusion direction.
func logValueFormula(t *translator, s *core.Schema, name string, arity, j int) (func([]dlog.Term) (fol.Formula, error), []string, error) {
	vars := make([]string, arity)
	for i := range vars {
		vars[i] = fmt.Sprintf("L%s·%d·%d", name, j, i)
	}
	switch {
	case s.In.Has(name):
		return func(args []dlog.Term) (fol.Formula, error) {
			return t.inputAtom(name, args, j), nil
		}, vars, nil
	case s.Out.Has(name):
		return func(args []dlog.Term) (fol.Formula, error) {
			return t.outputAtom(name, args, j)
		}, vars, nil
	}
	return nil, nil, fmt.Errorf("verify: logged relation %s is neither input nor output", name)
}

func tupleTerms(t relation.Tuple) []dlog.Term {
	out := make([]dlog.Term, len(t))
	for i, c := range t {
		out[i] = dlog.C(string(c))
	}
	return out
}

// replayLogCheck executes the machine on the witness inputs and verifies the
// produced log equals the queried one.
func replayLogCheck(m *core.Machine, db relation.Instance, inputs relation.Sequence, log relation.Sequence) error {
	run, err := m.Execute(db, inputs)
	if err != nil {
		return err
	}
	if len(run.Logs) != len(log) {
		return fmt.Errorf("log length %d vs %d", len(run.Logs), len(log))
	}
	for j := range log {
		if !run.Logs[j].Equal(log[j]) {
			return fmt.Errorf("step %d: produced log %s, want %s", j+1, run.Logs[j], log[j])
		}
	}
	return nil
}

// BruteForceLogValidity decides log validity by exhaustive search over input
// sequences drawn from the given constant pool, with at most maxFacts facts
// per step. It is exponential and exists as an oracle for property tests and
// as the naive baseline in the benchmarks.
func BruteForceLogValidity(m *core.Machine, db relation.Instance, log relation.Sequence, pool []relation.Const, maxFacts int) (bool, relation.Sequence, error) {
	n := len(log)
	// Enumerate all candidate single-step inputs: subsets of the fact
	// universe of size ≤ maxFacts.
	var universe []relation.Fact
	for _, d := range m.Schema().In {
		tuples := enumerateTuples(pool, d.Arity)
		for _, t := range tuples {
			universe = append(universe, relation.Fact{Rel: d.Name, Args: t})
		}
	}
	var steps []relation.Instance
	var build func(start, left int, cur relation.Instance)
	build = func(start, left int, cur relation.Instance) {
		steps = append(steps, cur.Clone())
		if left == 0 {
			return
		}
		for i := start; i < len(universe); i++ {
			next := cur.Clone()
			next.Add(universe[i].Rel, universe[i].Args)
			build(i+1, left-1, next)
		}
	}
	build(0, maxFacts, relation.NewInstance())
	// Depth-first over sequences with pruning on log prefix.
	var rec func(j int, prefix relation.Sequence) (relation.Sequence, error)
	rec = func(j int, prefix relation.Sequence) (relation.Sequence, error) {
		if j == n {
			return prefix, nil
		}
		for _, step := range steps {
			cand := append(prefix.Clone(), step.Clone())
			run, err := m.Execute(db, cand)
			if err != nil {
				return nil, err
			}
			if !run.Logs[j].Equal(log[j]) {
				continue
			}
			if w, err := rec(j+1, cand); err != nil || w != nil {
				return w, err
			}
		}
		return nil, nil
	}
	w, err := rec(0, relation.Sequence{})
	if err != nil {
		return false, nil, err
	}
	return w != nil, w, nil
}

func enumerateTuples(pool []relation.Const, arity int) []relation.Tuple {
	if arity == 0 {
		return []relation.Tuple{{}}
	}
	sub := enumerateTuples(pool, arity-1)
	var out []relation.Tuple
	for _, c := range pool {
		for _, t := range sub {
			nt := make(relation.Tuple, 0, arity)
			nt = append(nt, c)
			nt = append(nt, t...)
			out = append(out, nt)
		}
	}
	return out
}
