package verify

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fol"
	"repro/internal/sat"
)

// This file is the parallel verification engine: every decision procedure in
// the package reduces to a list of independent Bernays–Schönfinkel
// subproblems (one per condition, clause, run length, or candidate), and the
// helpers here fan that list out across Options.Parallelism workers with
// first-witness-wins early termination and context cancellation.
//
// Determinism policy (see DESIGN.md §3.4): the DECISION of every procedure
// is identical under any parallelism, because satisfiability of the
// subproblem list is order-independent. The WITNESS may differ from the
// sequential one — sequential evaluation returns the first satisfiable
// subproblem in declaration order, parallel evaluation returns whichever
// worker finds one first. Replay checks validate either.

// workers resolves Options.Parallelism to a worker count.
func (o *Options) workers() int {
	switch {
	case o.Parallelism < 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism == 0:
		return 1
	}
	return o.Parallelism
}

// unit is one independent subproblem of a decision procedure. run returns
// (result, found, err): found reports a witness/counterexample; a false
// found with nil err means the subproblem is conclusively negative (unsat).
type unit[T any] struct {
	run func(ctx context.Context) (T, bool, error)
}

// searchFirst evaluates the units and returns the first found result, if
// any. With one worker the units run strictly sequentially in order,
// stopping at the first found result or error — the exact pre-parallel
// behavior. With more workers the units are pulled from a shared queue; the
// first found result cancels the remaining work.
//
// Error policy: a found witness wins over errors in sibling units (a
// sequential run with a different unit order could also have found it
// before erroring); if no unit finds anything and some erred, the
// lowest-indexed error is returned so runs are reproducible.
func searchFirst[T any](ctx context.Context, workers int, units []unit[T]) (T, bool, error) {
	var zero T
	if workers <= 1 || len(units) <= 1 {
		for _, u := range units {
			if err := ctx.Err(); err != nil {
				return zero, false, err
			}
			v, found, err := u.run(ctx)
			if err != nil {
				return zero, false, err
			}
			if found {
				return v, true, nil
			}
		}
		return zero, false, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > len(units) {
		workers = len(units)
	}
	type outcome struct {
		val   T
		found bool
		err   error
		done  bool
	}
	outs := make([]outcome, len(units))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(units) || ctx.Err() != nil {
					return
				}
				v, found, err := units[i].run(ctx)
				outs[i] = outcome{val: v, found: found, err: err, done: true}
				if found {
					cancel() // first witness wins: stop the other workers
				}
			}
		}()
	}
	wg.Wait()

	for _, o := range outs {
		if o.done && o.found {
			return o.val, true, nil
		}
	}
	for _, o := range outs {
		if o.done && o.err != nil {
			return zero, false, o.err
		}
	}
	// All completed units were conclusively negative. A live context here
	// means every unit ran (our own cancel only fires on a found witness,
	// which returned above); a dead one means the parent died mid-run and
	// some units were skipped, so no negative verdict can be claimed.
	if err := ctx.Err(); err != nil {
		return zero, false, err
	}
	return zero, false, nil
}

// forEach evaluates n independent subproblems, all of which must complete
// (no early termination on success — used by batch APIs where every
// candidate needs an answer). The first error cancels the remaining work
// and is returned; results are positionally aligned with the inputs.
func forEach[T any](ctx context.Context, workers int, n int, run func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := run(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := run(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// solveSub grounds and solves one subproblem, consulting the memo cache and
// mapping an Unknown status to the cause: context cancellation when the
// call's context died, ErrBudget otherwise. Every decision procedure's
// units go through here.
func solveSub(ctx context.Context, opts *Options, p *fol.Problem) (*fol.Result, error) {
	p.MaxConflicts = opts.MaxConflicts
	p.Context = ctx
	var key string
	if opts.Cache != nil {
		key = problemKey(p)
		if res, ok := opts.Cache.lookup(key); ok {
			return res, nil
		}
	}
	res, err := fol.Solve(p)
	if err != nil {
		return nil, err
	}
	if res.Status == sat.Unknown {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, ErrBudget
	}
	if opts.Cache != nil {
		opts.Cache.store(key, res)
	}
	return res, nil
}
