package verify

import (
	"repro/internal/relation"
)

// shrinkInputs greedily minimizes a witness input sequence: facts are
// removed one at a time (and trailing empty steps dropped) as long as the
// keep predicate — a replay of the property being witnessed — remains true.
// SAT models leave free predicates full of irrelevant tuples; shrinking
// turns them into counterexamples a person can read. The result is a local
// minimum: removing any single remaining fact breaks the property.
func shrinkInputs(seq relation.Sequence, keep func(relation.Sequence) bool) relation.Sequence {
	cur := seq.Clone()
	for {
		changed := false
		for step := range cur {
			for _, name := range cur[step].Names() {
				rel := cur[step].Rel(name)
				for _, t := range rel.Tuples() {
					cand := cur.Clone()
					// Remove one fact by rebuilding the relation.
					nr := relation.NewRel(rel.Arity())
					for _, u := range cand[step].Rel(name).Tuples() {
						if !u.Equal(t) {
							nr.Add(u)
						}
					}
					if nr.Len() == 0 {
						delete(cand[step], name)
					} else {
						cand[step][name] = nr
					}
					if keep(cand) {
						cur = cand
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	// Drop trailing empty steps if the property survives.
	for len(cur) > 0 && cur[len(cur)-1].Empty() {
		cand := cur[:len(cur)-1].Clone()
		if !keep(cand) {
			break
		}
		cur = cand
	}
	return cur
}

// shrinkPair minimizes two witness sequences jointly (used by the two-run
// determinacy check).
func shrinkPair(a, b relation.Sequence, keep func(a, b relation.Sequence) bool) (relation.Sequence, relation.Sequence) {
	a = shrinkInputs(a, func(cand relation.Sequence) bool { return len(cand) == len(a) && keep(cand, b) })
	b = shrinkInputs(b, func(cand relation.Sequence) bool { return len(cand) == len(b) && keep(a, cand) })
	return a, b
}
