package verify

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/fol"
	"repro/internal/relation"
	"repro/internal/sat"
)

// MinimizeResult is the outcome of a log-minimization query.
type MinimizeResult struct {
	// Removable reports that, for all runs up to the length bound, the
	// values of the queried relation are determined by the rest of the log
	// (so dropping it from the log loses no information).
	Removable bool
	// WitnessA and WitnessB, when not removable, are two input sequences
	// whose reduced logs agree at every step while the queried relation's
	// log values differ at the last step.
	WitnessA, WitnessB relation.Sequence
	Stats              Stats
}

// RemovableFromLog decides the log-minimization question of Section 2.1
// ("one can remove the relation deliver from the log of short without
// losing any information"): whether the log values of relation name are
// determined by the remaining logged relations, for all runs of length at
// most maxLen. The check is a bounded determinacy test: it searches for two
// runs with identical reduced logs whose name-values differ, using a
// sentence over two replicated copies of the input schema. Unlike the
// paper's decision procedures this one is length-bounded; a negative answer
// (Removable) is definitive only up to maxLen.
func RemovableFromLog(m *core.Machine, db relation.Instance, name string, maxLen int, opts *Options) (*MinimizeResult, error) {
	opts = opts.orDefault()
	if err := requireSpocus(m); err != nil {
		return nil, err
	}
	s := m.Schema()
	if !s.Logged(name) {
		return nil, fmt.Errorf("verify: %s is not a logged relation", name)
	}
	ctx, cancel := opts.begin()
	defer cancel()

	// One independent subproblem per run length: length-n determinacy does
	// not depend on any other length, so the lengths fan out across the
	// worker pool with first-witness-wins. Sequentially the shortest
	// differing length is found first; in parallel any differing length may
	// win (the witness is replay-shrunk either way), but Removable itself —
	// all lengths unsatisfiable — is order-independent.
	subStats := make([]Stats, maxLen)
	units := make([]unit[*MinimizeResult], 0, maxLen)
	for n := 1; n <= maxLen; n++ {
		n := n
		units = append(units, unit[*MinimizeResult]{run: func(ctx context.Context) (*MinimizeResult, bool, error) {
			ta := newTranslator(m, "a")
			tb := newTranslator(m, "b")
			var conj []fol.Formula
			// Reduced logs equal at steps 1..n.
			for j := 1; j <= n; j++ {
				for _, q := range s.Log {
					if q == name {
						continue
					}
					eq, err := valuesEqual(ta, tb, s, q, j)
					if err != nil {
						return nil, false, err
					}
					conj = append(conj, eq)
				}
			}
			// name differs at step n.
			diff, err := valuesDiffer(ta, tb, s, name, n)
			if err != nil {
				return nil, false, err
			}
			conj = append(conj, diff)

			fixed := map[string]*relation.Rel{}
			free := map[string]int{}
			ta.freePreds(n, free)
			tb.freePreds(n, free)
			dbPreds(m, db, fixed, free)
			// Output-value equivalence between the two runs is a genuine ∀∃
			// sentence (body variables of output rules sit under the universal
			// tuple quantifier), outside ∃*∀*FO — consistent with the paper
			// leaving log minimization open. FiniteDomain expands those inner
			// existentials over the explicit domain, making this a bounded
			// check in the domain as well as in the run length.
			res, err := solveSub(ctx, opts, &fol.Problem{
				Formula:      fol.AndF(conj...),
				Fixed:        fixed,
				Free:         free,
				ExtraConsts:  m.Constants(),
				FiniteDomain: true,
				Tag:          m.Fingerprint(),
			})
			if err != nil {
				return nil, false, err
			}
			subStats[n-1] = statsOf(res)
			if res.Status == sat.Unsat {
				return nil, false, nil
			}
			out := &MinimizeResult{Stats: statsOf(res)}
			out.WitnessA = ta.extractInputs(res.Model, n)
			out.WitnessB = tb.extractInputs(res.Model, n)
			if !opts.SkipReplay {
				if err := replayDeterminacy(m, db, out.WitnessA, out.WitnessB, name); err != nil {
					return nil, false, fmt.Errorf("verify: internal error: %w", err)
				}
				out.WitnessA, out.WitnessB = shrinkPair(out.WitnessA, out.WitnessB, func(a, b relation.Sequence) bool {
					return replayDeterminacy(m, db, a, b, name) == nil
				})
			}
			return out, true, nil
		}})
	}
	found, ok, err := searchFirst(ctx, opts.workers(), units)
	if err != nil {
		return nil, err
	}
	if ok {
		return found, nil
	}
	out := &MinimizeResult{Removable: true}
	if maxLen > 0 {
		out.Stats = subStats[maxLen-1]
	}
	return out, nil
}

// MinimalLog greedily removes relations from the log (in reverse declaration
// order) that RemovableFromLog deems determined by the rest, returning a
// minimal sufficient log up to the length bound.
func MinimalLog(m *core.Machine, db relation.Instance, maxLen int, opts *Options) ([]string, error) {
	keep := append([]string{}, m.Schema().Log...)
	for i := len(keep) - 1; i >= 0; i-- {
		candidate := keep[i]
		trimmed := m.Schema().Clone()
		trimmed.Log = append(append([]string{}, keep[:i]...), keep[i+1:]...)
		trimmed.State = nil
		reduced, err := core.NewSpocus(trimmed, m.OutputRules())
		if err != nil {
			return nil, err
		}
		reduced.SetName(m.Name() + "-minlog")
		// Is candidate determined by the remaining log? Test on a machine
		// that still logs it, with the reduced set as "the rest".
		full := m.Schema().Clone()
		full.Log = append(append([]string{}, trimmed.Log...), candidate)
		full.State = nil
		probe, err := core.NewSpocus(full, m.OutputRules())
		if err != nil {
			return nil, err
		}
		res, err := RemovableFromLog(probe, db, candidate, maxLen, opts)
		if err != nil {
			return nil, err
		}
		if res.Removable {
			keep = append(keep[:i], keep[i+1:]...)
		}
	}
	return keep, nil
}

// valuesEqual builds ∀x̄ (vA(x̄) ↔ vB(x̄)) for logged relation q at step j.
func valuesEqual(ta, tb *translator, s *core.Schema, q string, j int) (fol.Formula, error) {
	arity, _ := s.Arity(q)
	vars := make([]string, arity)
	terms := make([]dlog.Term, arity)
	for i := range vars {
		vars[i] = fmt.Sprintf("E%s·%d·%d", q, j, i)
		terms[i] = dlog.V(vars[i])
	}
	va, err := logValueAt(ta, s, q, j)
	if err != nil {
		return nil, err
	}
	vb, err := logValueAt(tb, s, q, j)
	if err != nil {
		return nil, err
	}
	fa, err := va(terms)
	if err != nil {
		return nil, err
	}
	fb, err := vb(terms)
	if err != nil {
		return nil, err
	}
	return fol.ForallF(vars, fol.AndF(fol.Implies(fa, fb), fol.Implies(fb, fa))), nil
}

// valuesDiffer builds ∃x̄ (vA ⊕ vB) for logged relation q at step j.
func valuesDiffer(ta, tb *translator, s *core.Schema, q string, j int) (fol.Formula, error) {
	arity, _ := s.Arity(q)
	vars := make([]string, arity)
	terms := make([]dlog.Term, arity)
	for i := range vars {
		vars[i] = fmt.Sprintf("X%s·%d·%d", q, j, i)
		terms[i] = dlog.V(vars[i])
	}
	va, err := logValueAt(ta, s, q, j)
	if err != nil {
		return nil, err
	}
	vb, err := logValueAt(tb, s, q, j)
	if err != nil {
		return nil, err
	}
	fa, err := va(terms)
	if err != nil {
		return nil, err
	}
	fb, err := vb(terms)
	if err != nil {
		return nil, err
	}
	return fol.OrF(
		fol.ExistsF(vars, fol.AndF(fa, fol.NotF(fb))),
		fol.ExistsF(vars, fol.AndF(fol.NotF(fa), fb)),
	), nil
}

// replayDeterminacy checks the two witness runs: reduced logs equal at all
// steps, the target relation differing at the last.
func replayDeterminacy(m *core.Machine, db relation.Instance, a, b relation.Sequence, name string) error {
	ra, err := m.Execute(db, a)
	if err != nil {
		return err
	}
	rb, err := m.Execute(db, b)
	if err != nil {
		return err
	}
	s := m.Schema()
	n := len(a)
	for j := 0; j < n; j++ {
		for _, q := range s.Log {
			if q == name {
				continue
			}
			arity, _ := s.Arity(q)
			if !relOrEmpty(ra.Logs[j], q, arity).Equal(relOrEmpty(rb.Logs[j], q, arity)) {
				return fmt.Errorf("reduced logs differ at step %d on %s", j+1, q)
			}
		}
	}
	arity, _ := s.Arity(name)
	if relOrEmpty(ra.Logs[n-1], name, arity).Equal(relOrEmpty(rb.Logs[n-1], name, arity)) {
		return fmt.Errorf("target relation %s does not differ at last step", name)
	}
	return nil
}
