package verify

import (
	"context"
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/relation"
)

// The ranked progress service of Section 2.1: given a customer's partial
// run, suggest next inputs that advance them toward a goal (canonically
// "the order gets delivered"). Suggestions are found operationally, by
// stepping the actual transducer — no SAT reduction is involved — so every
// suggestion is exact: issuing a Distance-1 fact now makes the goal hold in
// the very next output, and a Distance-2 fact enables some single follow-up
// input to do so (the Figure 1 shape: order now, pay next).

// Suggestion is one recommended next input.
type Suggestion struct {
	// Fact is the input fact to issue now.
	Fact relation.Fact `json:"fact"`
	// Distance is 1 when issuing Fact satisfies the goal in the resulting
	// output, 2 when some follow-up single input does.
	Distance int `json:"distance"`
	// Follow, for Distance 2, is one follow-up fact that completes the goal.
	Follow *relation.Fact `json:"follow,omitempty"`
}

// SuggestResult is the ranked suggestion list.
type SuggestResult struct {
	// Suggestions is ordered best-first: all Distance-1 facts (sorted), then
	// Distance-2 facts (sorted).
	Suggestions []Suggestion `json:"suggestions"`
	// Truncated reports that the executor budget ran out before every
	// candidate was tried: absent suggestions are unknown, not ruled out.
	Truncated bool `json:"truncated,omitempty"`
}

// SuggestProgress ranks candidate single-fact next inputs over the constant
// pool by how directly they advance the partial run toward the goal.
// budget bounds the number of transducer executions spent (the candidate
// space is |pool|^arity per input relation, squared for the two-step
// lookahead); 0 means DefaultSuggestBudget. The context cancels the scan.
func SuggestProgress(ctx context.Context, m *core.Machine, db relation.Instance, prefix relation.Sequence, g *Goal, pool []relation.Const, budget int) (*SuggestResult, error) {
	if err := g.validate(m.Schema()); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if budget <= 0 {
		budget = DefaultSuggestBudget
	}
	var universe []relation.Fact
	for _, d := range m.Schema().In {
		for _, tup := range enumerateTuples(pool, d.Arity) {
			universe = append(universe, relation.Fact{Rel: d.Name, Args: tup})
		}
	}
	sort.Slice(universe, func(i, j int) bool { return universe[i].String() < universe[j].String() })

	res := &SuggestResult{}
	exec := func(seq relation.Sequence) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if budget <= 0 {
			res.Truncated = true
			return false, errBudgetDone
		}
		budget--
		run, err := m.Execute(db, seq)
		if err != nil {
			return false, err
		}
		return g.Holds(run.LastOutput()), nil
	}

	step := func(f relation.Fact) relation.Instance {
		in := relation.NewInstance()
		in.Add(f.Rel, f.Args)
		return in
	}

	// Pass 1: immediate achievers.
	var second []relation.Fact
	for _, f := range universe {
		ok, err := exec(append(prefix.Clone(), step(f)))
		if err == errBudgetDone {
			return res, nil
		}
		if err != nil {
			return nil, err
		}
		if ok {
			res.Suggestions = append(res.Suggestions, Suggestion{Fact: f, Distance: 1})
		} else {
			second = append(second, f)
		}
	}
	// Pass 2: enablers — facts after which some single input achieves the
	// goal. The first completing follow-up (in sorted order) is reported.
	for _, f := range second {
		base := append(prefix.Clone(), step(f))
		for _, f2 := range universe {
			ok, err := exec(append(base.Clone(), step(f2)))
			if err == errBudgetDone {
				return res, nil
			}
			if err != nil {
				return nil, err
			}
			if ok {
				follow := f2
				res.Suggestions = append(res.Suggestions, Suggestion{Fact: f, Distance: 2, Follow: &follow})
				break
			}
		}
	}
	return res, nil
}

// DefaultSuggestBudget bounds SuggestProgress's transducer executions when
// the caller passes no budget.
const DefaultSuggestBudget = 50000

// errBudgetDone is an internal sentinel: the suggest budget ran out (the
// partial result is still returned, flagged Truncated).
var errBudgetDone = errors.New("verify: suggest budget exhausted")
