package verify

import (
	"testing"

	"repro/internal/relation"
)

func seqOf(steps ...relation.Instance) relation.Sequence { return steps }

func inst(facts ...relation.Fact) relation.Instance {
	in := relation.NewInstance()
	for _, f := range facts {
		in.Add(f.Rel, f.Args)
	}
	return in
}

func fact(rel string, args ...string) relation.Fact {
	t := make(relation.Tuple, len(args))
	for i, a := range args {
		t[i] = relation.Const(a)
	}
	return relation.Fact{Rel: rel, Args: t}
}

func TestShrinkRemovesIrrelevantFacts(t *testing.T) {
	// keep: sequence must contain fact a(x) somewhere.
	keep := func(s relation.Sequence) bool {
		for _, step := range s {
			if step.Has("a", relation.Tuple{"x"}) {
				return true
			}
		}
		return false
	}
	noisy := seqOf(
		inst(fact("a", "x"), fact("a", "junk1"), fact("b", "junk2")),
		inst(fact("c", "junk3")),
	)
	got := shrinkInputs(noisy, keep)
	if len(got) != 1 {
		t.Fatalf("trailing empty step not dropped: %v", got)
	}
	if got[0].Len() != 1 || !got[0].Has("a", relation.Tuple{"x"}) {
		t.Errorf("shrink left junk: %s", got[0])
	}
}

func TestShrinkIsLocalMinimum(t *testing.T) {
	// keep: both a(x) and a(y) present (in any steps).
	keep := func(s relation.Sequence) bool {
		hasX, hasY := false, false
		for _, step := range s {
			if step.Has("a", relation.Tuple{"x"}) {
				hasX = true
			}
			if step.Has("a", relation.Tuple{"y"}) {
				hasY = true
			}
		}
		return hasX && hasY
	}
	noisy := seqOf(inst(fact("a", "x"), fact("a", "y"), fact("a", "z")))
	got := shrinkInputs(noisy, keep)
	if got[0].Len() != 2 {
		t.Errorf("expected exactly the two needed facts, got %s", got[0])
	}
	if !keep(got) {
		t.Error("shrink broke the property")
	}
}

func TestShrinkKeepsLengthWhenRequired(t *testing.T) {
	// keep requires exactly 2 steps (like log validity).
	keep := func(s relation.Sequence) bool { return len(s) == 2 }
	got := shrinkInputs(seqOf(inst(fact("a", "x")), inst()), keep)
	if len(got) != 2 {
		t.Errorf("length-preserving keep violated: %d steps", len(got))
	}
	if got[0].Len() != 0 {
		t.Errorf("facts not removed: %s", got[0])
	}
}

func TestShrinkPair(t *testing.T) {
	// keep: run A contains a(x), run B contains b(y).
	keep := func(a, b relation.Sequence) bool {
		okA, okB := false, false
		for _, s := range a {
			if s.Has("a", relation.Tuple{"x"}) {
				okA = true
			}
		}
		for _, s := range b {
			if s.Has("b", relation.Tuple{"y"}) {
				okB = true
			}
		}
		return okA && okB
	}
	a := seqOf(inst(fact("a", "x"), fact("a", "junk")))
	b := seqOf(inst(fact("b", "y"), fact("b", "junk")))
	ga, gb := shrinkPair(a, b, keep)
	if ga[0].Len() != 1 || gb[0].Len() != 1 {
		t.Errorf("pair shrink left junk: %s / %s", ga[0], gb[0])
	}
}
