package verify

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
)

// logOf runs the machine and returns its log sequence — used to build
// known-valid logs.
func logOf(t *testing.T, m *core.Machine, db relation.Instance, inputs relation.Sequence) relation.Sequence {
	t.Helper()
	run, err := m.Execute(db, inputs)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return run.Logs
}

func TestLogValidityAcceptsRealLog(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	log := logOf(t, m, db, models.Fig1Inputs())
	res, err := LogValidity(m, db, log, nil)
	if err != nil {
		t.Fatalf("LogValidity: %v", err)
	}
	if !res.Valid {
		t.Fatal("genuine log rejected")
	}
	if len(res.Witness) != len(log) {
		t.Errorf("witness length %d, want %d", len(res.Witness), len(log))
	}
}

func TestLogValidityRejectsForgedDelivery(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	// A log claiming delivery without any payment: fraud.
	forged := relation.Sequence{
		models.Step(models.F("sendbill", "time", "855")),
		models.Step(models.F("deliver", "time")),
	}
	res, err := LogValidity(m, db, forged, nil)
	if err != nil {
		t.Fatalf("LogValidity: %v", err)
	}
	if res.Valid {
		t.Fatalf("forged log accepted; witness %v", res.Witness)
	}
}

func TestLogValidityRejectsWrongPrice(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	// Billing Time at Newsweek's price can never happen.
	forged := relation.Sequence{
		models.Step(models.F("sendbill", "time", "845")),
	}
	res, err := LogValidity(m, db, forged, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("wrong-price bill accepted")
	}
}

func TestLogValidityPartialLogFillsUnloggedInputs(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	// order is unlogged: a log showing a bill at step 1 and delivery at
	// step 2 forces the solver to invent the order input.
	log := relation.Sequence{
		models.Step(models.F("sendbill", "time", "855")),
		models.Step(models.F("pay", "time", "855"), models.F("deliver", "time")),
	}
	res, err := LogValidity(m, db, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("valid partial log rejected")
	}
	if !res.Witness[0].Has("order", relation.Tuple{"time"}) {
		t.Errorf("witness did not reconstruct the order input: %v", res.Witness)
	}
}

func TestLogValidityEmptyLogSteps(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	log := relation.Sequence{relation.NewInstance(), relation.NewInstance()}
	res, err := LogValidity(m, db, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("all-empty log should be valid (empty inputs)")
	}
}

func TestLogValidityUnknownDatabase(t *testing.T) {
	m := models.Short()
	// No database given: the solver must invent a price making the log
	// valid.
	log := relation.Sequence{
		models.Step(models.F("sendbill", "gadget", "7")),
	}
	res, err := LogValidity(m, nil, log, &Options{UnknownDB: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("log invalid even with free database")
	}
	if !res.WitnessDB.Has("price", relation.Tuple{"gadget", "7"}) {
		t.Errorf("witness database missing price: %s", res.WitnessDB)
	}
}

func TestLogValidityRejectsUnloggedRelation(t *testing.T) {
	m := models.Short()
	log := relation.Sequence{models.Step(models.F("order", "time"))}
	if _, err := LogValidity(m, models.MagazineDB(), log, nil); err == nil {
		t.Fatal("log over unlogged relation accepted")
	}
}

func TestLogValidityRequiresSpocus(t *testing.T) {
	src := `
transducer ext
schema
  input: r/2;
  state: past-r/2, r2/1;
  output: o/0;
  log: o;
state rules
  past-r(X,Y) +:- r(X,Y);
  r2(Y) +:- r(X,Y);
output rules
  o :- past-r(X,Y), NOT r2(X);
`
	m := core.MustParseProgram(src)
	if _, err := LogValidity(m, nil, relation.Sequence{relation.NewInstance()}, nil); err == nil {
		t.Fatal("extended machine accepted by decision procedure")
	}
}

// TestPropLogValidityMatchesBruteForce cross-checks the ∃*∀*FO reduction
// against exhaustive input enumeration on a tiny schema.
func TestPropLogValidityMatchesBruteForce(t *testing.T) {
	m := core.MustParseProgram(`
transducer tiny
schema
  database: good/1;
  input: put/1;
  state: past-put/1;
  output: seen/1, fresh/1;
  log: seen;
state rules
  past-put(X) +:- put(X);
output rules
  seen(X) :- put(X), good(X);
  fresh(X) :- put(X), NOT past-put(X);
`)
	db := relation.NewInstance()
	db.Add("good", relation.Tuple{"a"})
	db.Add("good", relation.Tuple{"b"})
	pool := []relation.Const{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(2)
		log := make(relation.Sequence, n)
		for j := range log {
			in := relation.NewInstance()
			for k := 0; k < r.Intn(3); k++ {
				in.Add("seen", relation.Tuple{pool[r.Intn(len(pool))]})
			}
			log[j] = in
		}
		res, err := LogValidity(m, db, log, nil)
		if err != nil {
			t.Logf("LogValidity error: %v", err)
			return false
		}
		want, _, err := BruteForceLogValidity(m, db, log, pool, 2)
		if err != nil {
			t.Logf("brute force error: %v", err)
			return false
		}
		if res.Valid != want {
			t.Logf("mismatch on log %v: solver=%v brute=%v", log, res.Valid, want)
		}
		return res.Valid == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReachGoalDeliver(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	g, err := ParseGoal("deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReachGoal(m, db, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("deliver unreachable despite priced products")
	}
	if len(res.Witness) != 2 {
		t.Errorf("witness length %d, want 2", len(res.Witness))
	}
}

func TestReachGoalUnreachableWithoutPrice(t *testing.T) {
	m := models.Short()
	empty := relation.NewInstance() // no prices at all
	g, _ := ParseGoal("deliver(X)")
	res, err := ReachGoal(m, empty, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reachable {
		t.Fatalf("deliver reachable with empty price relation: %v", res.Witness)
	}
}

func TestReachGoalSpecificProduct(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	g, _ := ParseGoal("deliver(le-monde)")
	res, err := ReachGoal(m, db, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("deliver(le-monde) unreachable")
	}
	gBad, _ := ParseGoal("deliver(atlantis)")
	res2, err := ReachGoal(m, db, gBad, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reachable {
		t.Fatal("unpriced product deliverable")
	}
}

func TestReachGoalNegativeLiterals(t *testing.T) {
	m := models.Friendly()
	db := models.MagazineDB()
	// Deliver without ever having been rebilled in the same step.
	g, _ := ParseGoal("deliver(X), NOT rejectpay(X)")
	res, err := ReachGoal(m, db, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("goal with negative literal unreachable")
	}
}

func TestReachGoalUnknownDB(t *testing.T) {
	m := models.Short()
	g, _ := ParseGoal("deliver(X)")
	res, err := ReachGoal(m, nil, g, &Options{UnknownDB: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("deliver unreachable over all databases")
	}
	if res.WitnessDB.Rel("price").Len() == 0 {
		t.Error("witness database has no price")
	}
}

func TestReachGoalFromPrefix(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	prefix := relation.Sequence{models.Step(models.F("order", "time"))}
	g, _ := ParseGoal("deliver(time)")
	res, err := ReachGoalFrom(m, db, prefix, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("goal unreachable after ordering")
	}
	// Already-paid product can no longer be delivered (past-pay blocks).
	paid := relation.Sequence{
		models.Step(models.F("order", "time")),
		models.Step(models.F("pay", "time", "855")),
	}
	res2, err := ReachGoalFrom(m, db, paid, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reachable {
		t.Fatalf("redelivery after payment should be impossible: %v", res2.Witness)
	}
}

func TestProgress(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	prefix := relation.Sequence{models.Step(models.F("order", "time"))}
	g, _ := ParseGoal("deliver(time)")
	facts, err := Progress(m, db, prefix, g, []relation.Const{"time", "855", "845"})
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 || facts[0].String() != "pay(time, 855)" {
		t.Errorf("Progress = %v, want [pay(time, 855)]", facts)
	}
}

func TestTemporalNoDeliveryBeforePayment(t *testing.T) {
	// The paper's flagship property: ∀x,y (deliver(x) ∧ price(x,y) →
	// past-pay(x,y)) holds for short and friendly.
	c, err := ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	db := models.MagazineDB()
	for _, m := range []*core.Machine{models.Short(), models.Friendly()} {
		res, err := CheckTemporal(m, db, []*Condition{c}, nil)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !res.Holds {
			t.Errorf("%s: property violated by %v", m.Name(), res.Counterexample)
		}
	}
}

func TestTemporalViolatedProperty(t *testing.T) {
	// Bills can be sent without payment — this property must fail, with a
	// replayable counterexample.
	c, err := ParseCondition("sendbill(X,Y) => past-pay(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckTemporal(models.Short(), models.MagazineDB(), []*Condition{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("false property verified")
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("no counterexample returned")
	}
}

func TestTemporalBuggyVariant(t *testing.T) {
	// A buggy short that delivers on order alone violates the payment
	// property.
	buggy := core.MustParseProgram(`
transducer buggy
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- order(X), price(X,Y);
`)
	c, _ := ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	res, err := CheckTemporal(buggy, models.MagazineDB(), []*Condition{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("buggy transducer passed the payment property")
	}
}

func TestTemporalUnknownDB(t *testing.T) {
	// A subtlety the unknown-database variant exposes: over unconstrained
	// databases the payment property FAILS, because a non-functional price
	// relation lets price(x,y') hold for an amount y' that was never paid
	// while pay(x,y) triggers the delivery. The counterexample database
	// must therefore assign some product two prices.
	c, _ := ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	res, err := CheckTemporal(models.Short(), nil, []*Condition{c}, &Options{UnknownDB: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("property should fail over databases with non-functional price")
	}
	prices := map[relation.Const]int{}
	for _, tup := range res.CounterexampleDB.Rel("price").Tuples() {
		prices[tup[0]]++
	}
	multi := false
	for _, n := range prices {
		if n > 1 {
			multi = true
		}
	}
	if !multi {
		t.Errorf("counterexample database has functional price: %s", res.CounterexampleDB)
	}
}

func TestContainsShortFriendlyFullLog(t *testing.T) {
	// Theorem 3.5's customization check: the reference (short, with its
	// inputs logged) contains the customized friendly — friendly's extra
	// input and warning outputs never disturb the logged relations.
	logSet := []string{"order", "pay", "sendbill", "deliver"}
	shortFL := models.WithLog(models.Short(), logSet...)
	friendlyFL := models.WithLog(models.Friendly(), logSet...)
	db := models.MagazineDB()
	r, err := Contains(shortFL, friendlyFL, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contained {
		t.Errorf("short ⊉ friendly: differs at %s on %v", r.DiffersAt, r.Counterexample)
	}
}

func TestEquivalentVerboseVariant(t *testing.T) {
	// Corollary 3.6: same input schema, full log on the shared relations —
	// both containment directions are decidable. A verbose variant that
	// only adds an unlogged warning output is equivalent to short.
	verbose := core.MustParseProgram(`
transducer verbose
schema
  database: price/2, available/1;
  input: order/1, pay/2;
  state: past-order/1, past-pay/2;
  output: sendbill/2, deliver/1, unavailable/1;
  log: order, pay, sendbill, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  unavailable(X) :- order(X), NOT available(X);
`)
	shortFL := models.WithLog(models.Short(), "order", "pay", "sendbill", "deliver")
	db := models.MagazineDB()
	eq, r12, r21, err := Equivalent(shortFL, verbose, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("short ≢ verbose: ⊇=%v (%v) ⊆=%v (%v)",
			r12.Contained, r12.Counterexample, r21.Contained, r21.Counterexample)
	}
}

func TestContainsDetectsBehavioralChange(t *testing.T) {
	// With a full log, a customization that changes logged behaviour —
	// restricted refuses to bill blocked products — is NOT contained: the
	// log exposes the missing sendbill. (Under Theorem 3.5's preconditions
	// containment coincides with log-function equality, so any logged
	// divergence is detected.)
	logSet := []string{"order", "pay", "sendbill", "deliver"}
	shortFL := models.WithLog(models.Short(), logSet...)
	restrictedFL := models.WithLog(models.Restricted(), logSet...)
	db := models.MagazineDB()
	db.Add("blocked", relation.Tuple{"le-monde"})
	r, err := Contains(shortFL, restrictedFL, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Contained {
		t.Fatal("blocked-product customization reported log-equivalent to short")
	}
	if r.DiffersAt == "" || len(r.Counterexample) == 0 {
		t.Errorf("missing counterexample details: %+v", r)
	}
	// Without blocked products the two behave identically.
	r2, err := Contains(shortFL, restrictedFL, models.MagazineDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Contained {
		t.Errorf("containment fails even with no blocked products: %v", r2.Counterexample)
	}
}

func TestRestrictedPartialLogsValidForShort(t *testing.T) {
	// With short's original PARTIAL log the restricted customization is
	// sound in the paper's sense: its logs are valid logs of short. The
	// partial-log case is outside Theorem 3.5 (order is unlogged), so this
	// is verified operationally: run restricted, validate the produced log
	// against short with Theorem 3.1.
	db := models.MagazineDB()
	db.Add("blocked", relation.Tuple{"le-monde"})
	restricted := models.Restricted()
	short := models.Short()
	sessions := []relation.Sequence{
		{models.Step(models.F("order", "le-monde")), models.Step(models.F("pay", "le-monde", "8350"))},
		{models.Step(models.F("order", "time"), models.F("order", "le-monde")), models.Step(models.F("pay", "time", "855"))},
	}
	for _, inputs := range sessions {
		run, err := restricted.Execute(db, inputs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := LogValidity(short, db, run.Logs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Valid {
			t.Errorf("restricted log %v not valid for short", run.Logs)
		}
	}
}

func TestContainsPreconditions(t *testing.T) {
	// short's own (partial) log does not satisfy in₁ ⊆ log.
	if _, err := Contains(models.Short(), models.Friendly(), models.MagazineDB(), nil); err == nil {
		t.Fatal("precondition violation accepted")
	}
	// Different log sets rejected.
	a := models.WithLog(models.Short(), "order", "pay", "sendbill", "deliver")
	b := models.WithLog(models.Friendly(), "order", "pay", "sendbill")
	if _, err := Contains(a, b, models.MagazineDB(), nil); err == nil {
		t.Fatal("mismatched log sets accepted")
	}
}

func TestErrorFreeVerifyEnforcedProperty(t *testing.T) {
	m := models.Strict()
	db := models.MagazineDB()
	// Enforced directly by an error rule: payments are at listed prices.
	s, err := parseSentence("pay(X,Y) => price(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckErrorFree(m, db, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("enforced property fails: %v", res.Counterexample)
	}
}

func TestErrorFreeVerifyVacuousByErrorRule(t *testing.T) {
	m := models.Strict()
	db := models.MagazineDB()
	// Double orders are errors, so on error-free runs "order(X) ∧
	// past-order(X) → anything" holds vacuously…
	s, err := parseSentence("order(X), past-order(X) => pay(X,X)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckErrorFree(m, db, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("vacuous property fails: %v", res.Counterexample)
	}
	// …but the same sentence fails on plain short (no error discipline):
	// plain short has no error rules, so every run is error-free.
	res2, err := CheckErrorFree(models.Short(), db, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Holds {
		t.Error("property holds on short, which allows double orders")
	}
}

func TestErrorFreeVerifyViolatedProperty(t *testing.T) {
	m := models.Strict()
	db := models.MagazineDB()
	// Nothing stops ordering unavailable products in strict.
	s, err := parseSentence("order(X) => available(X)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckErrorFree(m, db, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("unenforced property verified")
	}
	if len(res.Counterexample) == 0 || res.Violated == nil {
		t.Fatal("missing counterexample details")
	}
}

func TestErrorFreeVerifyRejectsNegativeStateLiterals(t *testing.T) {
	s, _ := parseSentence("pay(X,Y) => price(X,Y)")
	_, err := CheckErrorFree(models.Guarded(), models.MagazineDB(), s, nil)
	var nse *ErrNegativeStateLiteral
	if !errors.As(err, &nse) {
		t.Fatalf("expected ErrNegativeStateLiteral, got %v", err)
	}
}

func TestErrorFreeContainment(t *testing.T) {
	db := models.MagazineDB()
	// Every error-free run of stricter is error-free for strict.
	r, err := ErrorFreeContained(models.Stricter(), models.Strict(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contained {
		t.Errorf("stricter ⊄ strict: %v", r.Counterexample)
	}
	// The converse fails: strict allows ordering unavailable products.
	r2, err := ErrorFreeContained(models.Strict(), models.Stricter(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Contained {
		t.Fatal("strict ⊆ stricter claimed")
	}
	if len(r2.Counterexample) == 0 {
		t.Fatal("no counterexample")
	}
}

func TestRemovableDeliverFromShortLog(t *testing.T) {
	// The paper: "one can remove the relation deliver from the log without
	// losing any information".
	m := models.Short()
	db := models.MagazineDB()
	res, err := RemovableFromLog(m, db, "deliver", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Removable {
		t.Errorf("deliver not removable: runs %v vs %v", res.WitnessA, res.WitnessB)
	}
}

func TestPayNotRemovableFromShortLog(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	res, err := RemovableFromLog(m, db, "pay", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removable {
		t.Fatal("pay reported removable; its values are free inputs")
	}
	if len(res.WitnessA) == 0 || len(res.WitnessB) == 0 {
		t.Fatal("missing witness runs")
	}
}

func TestMinimalLog(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	keep, err := MinimalLog(m, db, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// deliver must be dropped; pay must be kept.
	for _, n := range keep {
		if n == "deliver" {
			t.Errorf("minimal log still contains deliver: %v", keep)
		}
	}
	hasPay := false
	for _, n := range keep {
		if n == "pay" {
			hasPay = true
		}
	}
	if !hasPay {
		t.Errorf("minimal log dropped pay: %v", keep)
	}
}
