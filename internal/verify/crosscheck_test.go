package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
)

// tinyMachine is a small Spocus transducer over a 3-constant pool, used to
// cross-check the decision procedures against exhaustive search.
const tinySrc = `
transducer tiny2
schema
  database: good/1;
  input: put/1, tag/2;
  state: past-put/1, past-tag/2;
  output: hit/1, pairup/2;
  log: hit, pairup;
state rules
  past-put(X) +:- put(X);
  past-tag(X,Y) +:- tag(X,Y);
output rules
  hit(X) :- put(X), good(X), NOT past-put(X);
  pairup(X,Y) :- tag(X,Y), past-put(X), X <> Y;
`

func tinyMachine() (*core.Machine, relation.Instance, []relation.Const) {
	m := core.MustParseProgram(tinySrc)
	db := relation.NewInstance()
	db.Add("good", relation.Tuple{"a"})
	db.Add("good", relation.Tuple{"b"})
	return m, db, []relation.Const{"a", "b", "c"}
}

// bruteReachable enumerates all 2-step runs with at most two facts per step
// over the pool and tests the goal on the last output.
func bruteReachable(m *core.Machine, db relation.Instance, g *Goal, pool []relation.Const) bool {
	var universe []relation.Fact
	for _, d := range m.Schema().In {
		for _, t := range enumerateTuples(pool, d.Arity) {
			universe = append(universe, relation.Fact{Rel: d.Name, Args: t})
		}
	}
	var steps []relation.Instance
	steps = append(steps, relation.NewInstance())
	for i, f := range universe {
		s := relation.NewInstance()
		s.Add(f.Rel, f.Args)
		steps = append(steps, s)
		for _, f2 := range universe[i+1:] {
			s2 := s.Clone()
			s2.Add(f2.Rel, f2.Args)
			steps = append(steps, s2)
		}
	}
	for _, s1 := range steps {
		for _, s2 := range steps {
			run, err := m.Execute(db, relation.Sequence{s1, s2})
			if err != nil {
				continue
			}
			if g.Holds(run.LastOutput()) {
				return true
			}
		}
	}
	return false
}

// TestPropReachGoalMatchesBruteForce: the Theorem 3.2 procedure agrees with
// exhaustive two-step search on random single-literal goals. (Witnesses may
// use fresh constants outside the pool; for this transducer fresh constants
// never help — outputs require database membership or equalities over
// already-known constants — so the pooled brute force is a sound oracle.)
func TestPropReachGoalMatchesBruteForce(t *testing.T) {
	m, db, pool := tinyMachine()
	consts := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var goalSrc string
		if r.Intn(2) == 0 {
			goalSrc = "hit(" + pick(r, consts, "X") + ")"
		} else {
			goalSrc = "pairup(" + pick(r, consts, "X") + ", " + pick(r, consts, "Y") + ")"
		}
		g, err := ParseGoal(goalSrc)
		if err != nil {
			return false
		}
		res, err := ReachGoal(m, db, g, nil)
		if err != nil {
			t.Logf("ReachGoal(%s): %v", goalSrc, err)
			return false
		}
		want := bruteReachable(m, db, g, pool)
		if res.Reachable != want {
			t.Logf("goal %s: procedure=%v brute=%v (witness %v)", goalSrc, res.Reachable, want, res.Witness)
		}
		return res.Reachable == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func pick(r *rand.Rand, consts []string, v string) string {
	if r.Intn(2) == 0 {
		return v
	}
	return consts[r.Intn(len(consts))]
}

// TestPropTemporalSoundOnRandomRuns: whenever CheckTemporal says a
// condition holds, no randomly sampled run may violate it (soundness
// direction sampled operationally).
func TestPropTemporalSoundOnRandomRuns(t *testing.T) {
	m, db, pool := tinyMachine()
	conds := []string{
		"hit(X) => good(X)",
		"pairup(X,Y) => past-put(X)",
		"hit(X) => past-put(X)",
		"pairup(X,Y) => good(Y)",
	}
	for _, src := range conds {
		c, err := ParseCondition(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CheckTemporal(m, db, []*Condition{c}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Holds {
			continue // counterexamples are replay-verified inside CheckTemporal
		}
		// Sample runs and confirm no violation.
		r := rand.New(rand.NewSource(11))
		for trial := 0; trial < 150; trial++ {
			var seq relation.Sequence
			for j := 0; j < 1+r.Intn(3); j++ {
				in := relation.NewInstance()
				for k := 0; k < r.Intn(3); k++ {
					if r.Intn(2) == 0 {
						in.Add("put", relation.Tuple{pool[r.Intn(3)]})
					} else {
						in.Add("tag", relation.Tuple{pool[r.Intn(3)], pool[r.Intn(3)]})
					}
				}
				seq = append(seq, in)
			}
			if len(seq) == 0 {
				continue
			}
			if err := replayTemporalViolation(m, db, seq, c); err == nil {
				t.Fatalf("condition %q verified but violated by run %v", src, seq)
			}
		}
	}
}

// TestPropEquivalenceOfIdenticalMachines: any model compared with itself
// under a full log is equivalent (a sanity fixed point of Theorem 3.5).
func TestPropEquivalenceOfIdenticalMachines(t *testing.T) {
	db := models.MagazineDB()
	for _, mk := range []func() *core.Machine{models.Short, models.Restricted} {
		m := mk()
		logSet := append(m.Schema().In.Names(), m.Schema().Out.Names()...)
		full := models.WithLog(m, logSet...)
		eq, r1, r2, err := Equivalent(full, full, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%s not equivalent to itself: %v %v", m.Name(), r1.Counterexample, r2.Counterexample)
		}
	}
}
