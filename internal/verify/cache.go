package verify

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dlog"
	"repro/internal/fol"
)

// Cache memoizes solved grounding problems across decision procedures. The
// same subproblem recurs naturally: CheckErrorFree and ErrorFreeContained
// re-ask the same (transducer, run length) no-error sentences for every
// clause, Equivalent asks both Contains directions over shared groundings,
// and a long-running service re-verifies the same transducers over and over.
//
// The key is a canonical serialization of the full grounding input (the
// fingerprints of the machines whose translation produced the problem, the
// formula with variable/constant tagging, fixed extensions, free
// declarations, domain constants, solver mode), so a hit is guaranteed to
// be the same finite-satisfiability question asked of the same model. Only
// decisive results (Sat/Unsat) are stored; budget-exhausted and cancelled
// runs are not.
//
// Cached *fol.Result values are shared between callers and must be treated
// as read-only; every consumer in this package either only reads the model
// or clones the relations it keeps.
type Cache struct {
	mu      sync.RWMutex
	entries map[string]*fol.Result
	hits    uint64
	misses  uint64
}

// NewCache creates an empty cache, safe for concurrent use and for sharing
// between procedures and goroutines via Options.Cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*fol.Result)}
}

func (c *Cache) lookup(key string) (*fol.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return res, ok
}

func (c *Cache) store(key string, res *fol.Result) {
	c.mu.Lock()
	c.entries[key] = res
	c.mu.Unlock()
}

// Len returns the number of memoized subproblems.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// Stats returns the hit and miss counters.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// Purge drops every entry (counters are kept). Useful when a long-lived
// service swaps out its transducer set.
func (c *Cache) Purge() {
	c.mu.Lock()
	c.entries = make(map[string]*fol.Result)
	c.mu.Unlock()
}

// problemKey canonically serializes a grounding problem. Formula terms are
// tagged as variable or constant so names that appear in both roles cannot
// collide; fixed extensions use the relations' sorted tuple order; map
// iteration order never leaks into the key.
func problemKey(p *fol.Problem) string {
	var b strings.Builder
	// The tag scopes the key to the machine(s) whose translation produced
	// the problem (see fol.Problem.Tag): formulas erase the machine into
	// structure, and two models sharing rule text must not share entries
	// when one process-wide cache serves many models.
	b.WriteString(p.Tag)
	b.WriteByte('\x02')
	writeFormula(&b, p.Formula)

	b.WriteString("\x02fixed")
	names := make([]string, 0, len(p.Fixed))
	for name := range p.Fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := p.Fixed[name]
		fmt.Fprintf(&b, "\x01%s/", name)
		if r == nil {
			b.WriteString("nil")
			continue
		}
		fmt.Fprintf(&b, "%d", r.Arity())
		for _, t := range r.Tuples() {
			b.WriteByte('\x03')
			b.WriteString(t.Key())
		}
	}

	b.WriteString("\x02free")
	names = names[:0]
	for name := range p.Free {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "\x01%s/%d", name, p.Free[name])
	}

	b.WriteString("\x02consts")
	consts := make([]string, 0, len(p.ExtraConsts))
	for _, c := range p.ExtraConsts {
		consts = append(consts, string(c))
	}
	sort.Strings(consts)
	prev := "\x00"
	for _, c := range consts {
		if c == prev {
			continue
		}
		prev = c
		b.WriteByte('\x01')
		b.WriteString(c)
	}

	fmt.Fprintf(&b, "\x02w%d\x02fd%v", p.Witnesses, p.FiniteDomain)
	return b.String()
}

func writeFormula(b *strings.Builder, f fol.Formula) {
	switch t := f.(type) {
	case fol.Atom:
		b.WriteString("A(")
		b.WriteString(t.Pred)
		for _, a := range t.Args {
			writeTerm(b, a)
		}
		b.WriteByte(')')
	case fol.Equal:
		b.WriteString("E(")
		writeTerm(b, t.L)
		writeTerm(b, t.R)
		b.WriteByte(')')
	case fol.Not:
		b.WriteString("N(")
		writeFormula(b, t.F)
		b.WriteByte(')')
	case fol.And:
		b.WriteString("&(")
		for _, h := range t.Fs {
			writeFormula(b, h)
		}
		b.WriteByte(')')
	case fol.Or:
		b.WriteString("|(")
		for _, h := range t.Fs {
			writeFormula(b, h)
		}
		b.WriteByte(')')
	case fol.Exists:
		b.WriteString("X[")
		writeVars(b, t.Vars)
		b.WriteByte(']')
		writeFormula(b, t.F)
	case fol.Forall:
		b.WriteString("U[")
		writeVars(b, t.Vars)
		b.WriteByte(']')
		writeFormula(b, t.F)
	default:
		fmt.Fprintf(b, "?%T", f)
	}
}

func writeTerm(b *strings.Builder, t dlog.Term) {
	if t.Var {
		b.WriteString("\x01v:")
	} else {
		b.WriteString("\x01c:")
	}
	b.WriteString(t.Name)
}

func writeVars(b *strings.Builder, vars []string) {
	for i, v := range vars {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(v)
	}
}
