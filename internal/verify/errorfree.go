package verify

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/fol"
	"repro/internal/relation"
	"repro/internal/sat"
	"repro/internal/tsdi"
)

// ErrNegativeStateLiteral reports that a machine's error rules use negation
// on a state literal, taking it outside the decidable cases of Theorems 4.4
// and 4.6 (Theorems 4.3 and 4.5 show the general problems undecidable).
type ErrNegativeStateLiteral struct {
	Machine string
	Rule    dlog.Rule
}

func (e *ErrNegativeStateLiteral) Error() string {
	return fmt.Sprintf("verify: machine %q: error rule %q contains a negative state literal; the unrestricted problem is undecidable (Theorems 4.3/4.5)", e.Machine, e.Rule)
}

// checkNoNegativeStateLiterals enforces the hypothesis of Theorems 4.4/4.6.
func checkNoNegativeStateLiterals(m *core.Machine) error {
	s := m.Schema()
	for _, r := range m.ErrorRules() {
		for _, l := range r.Body {
			if l.Kind == dlog.LitNeg && s.State.Has(l.Atom.Pred) {
				return &ErrNegativeStateLiteral{Machine: m.Name(), Rule: r}
			}
		}
	}
	return nil
}

// ErrorFreeResult is the outcome of a Theorem 4.4 check.
type ErrorFreeResult struct {
	// Holds reports whether every error-free run satisfies the sentence.
	Holds bool
	// Counterexample is an error-free run violating a clause at its last
	// transition.
	Counterexample relation.Sequence
	// Violated is the failing clause.
	Violated *tsdi.Clause
	Stats    Stats
}

// CheckErrorFree decides, per Theorem 4.4, whether every error-free run of
// the Spocus transducer m on db satisfies the T_sdi sentence at every
// transition. The machine's error rules must contain no negative state
// literal. For a clause whose If side has k positive state literals,
// error-free runs of length k+1 suffice to witness a violation.
// CheckErrorFree fans the per-clause, per-run-length subproblems across
// Options.Parallelism workers; the first violation found wins. The Holds
// verdict is parallelism-independent; the reported clause and
// counterexample may differ from the sequential run when several
// (clause, length) pairs are violated.
func CheckErrorFree(m *core.Machine, db relation.Instance, sentence *tsdi.Sentence, opts *Options) (*ErrorFreeResult, error) {
	opts = opts.orDefault()
	ctx, cancel := opts.begin()
	defer cancel()
	if err := requireSpocus(m); err != nil {
		return nil, err
	}
	if err := checkNoNegativeStateLiterals(m); err != nil {
		return nil, err
	}
	if err := sentence.Validate(m.Schema()); err != nil {
		return nil, err
	}
	// One unit per (clause, run length) pair, flattened in the sequential
	// search order. The subsequence argument of Theorem 4.4 bounds a
	// violating error-free run by k+1 steps (k = positive state literals of
	// the If side) but does not let shorter witnesses be padded to exactly
	// k+1 — padding can introduce errors — so every length up to the bound
	// is searched.
	var units []unit[*ErrorFreeResult]
	for ci := range sentence.Clauses {
		c := &sentence.Clauses[ci]
		maxN := positiveStateLiterals(c.If, m.Schema()) + 1
		for n := 1; n <= maxN; n++ {
			n := n
			units = append(units, unit[*ErrorFreeResult]{run: func(ctx context.Context) (*ErrorFreeResult, bool, error) {
				return checkClauseAt(ctx, m, db, c, n, opts)
			}})
		}
	}
	found, ok, err := searchFirst(ctx, opts.workers(), units)
	if err != nil {
		return nil, err
	}
	if ok {
		return found, nil
	}
	return &ErrorFreeResult{Holds: true}, nil
}

// checkClauseAt searches for an error-free run of exactly length n whose
// last transition violates the clause; on success it returns the populated
// violation result.
func checkClauseAt(ctx context.Context, m *core.Machine, db relation.Instance, c *tsdi.Clause, n int, opts *Options) (*ErrorFreeResult, bool, error) {
	t := newTranslator(m, "")
	// Violation of the clause at step n: ∃x̄ (If' ∧ ⋀¬Then').
	var lits []fol.Formula
	for _, l := range c.If {
		f, err := t.literal(l, n)
		if err != nil {
			return nil, false, err
		}
		lits = append(lits, f)
	}
	for _, a := range c.Then {
		f, err := t.literal(dlog.Pos(a), n)
		if err != nil {
			return nil, false, err
		}
		lits = append(lits, fol.NotF(f))
	}
	violation := fol.ExistsF(c.Vars(), fol.AndF(lits...))
	// Error-freeness at every step 1..n.
	var noErr []fol.Formula
	for j := 1; j <= n; j++ {
		f, err := t.noErrorAt(j)
		if err != nil {
			return nil, false, err
		}
		noErr = append(noErr, f)
	}
	fixed := map[string]*relation.Rel{}
	free := map[string]int{}
	t.freePreds(n, free)
	if opts.UnknownDB {
		dbPreds(m, nil, fixed, free)
	} else {
		dbPreds(m, db, fixed, free)
	}
	res, err := solveSub(ctx, opts, &fol.Problem{
		Formula:     fol.AndF(append(noErr, violation)...),
		Fixed:       fixed,
		Free:        free,
		ExtraConsts: m.Constants(),
		Tag:         m.Fingerprint(),
	})
	if err != nil {
		return nil, false, err
	}
	if res.Status == sat.Unsat {
		return nil, false, nil
	}
	out := &ErrorFreeResult{Stats: statsOf(res), Violated: c}
	out.Counterexample = t.extractInputs(res.Model, n)
	if !opts.SkipReplay && !opts.UnknownDB {
		if err := replayErrorFreeViolation(m, db, out.Counterexample, *c); err != nil {
			return nil, false, fmt.Errorf("verify: internal error: %w", err)
		}
		out.Counterexample = shrinkInputs(out.Counterexample, func(cand relation.Sequence) bool {
			return len(cand) > 0 && replayErrorFreeViolation(m, db, cand, *c) == nil
		})
	}
	return out, true, nil
}

// positiveStateLiterals counts the positive state literals of a body — the
// k of Theorem 4.4's run-length bound.
func positiveStateLiterals(body []dlog.Literal, s *core.Schema) int {
	k := 0
	for _, l := range body {
		if l.Kind == dlog.LitPos && s.State.Has(l.Atom.Pred) {
			k++
		}
	}
	return k
}

// replayErrorFreeViolation checks the counterexample run is error-free and
// violates the clause at its final transition.
func replayErrorFreeViolation(m *core.Machine, db relation.Instance, seq relation.Sequence, c tsdi.Clause) error {
	run, err := m.Execute(db, seq)
	if err != nil {
		return err
	}
	if !run.Valid(core.ErrorFree) {
		return fmt.Errorf("counterexample run is not error-free (error at step %d)", run.ErrorFreePrefix()+1)
	}
	one := &tsdi.Sentence{Clauses: []tsdi.Clause{c}}
	last := run.Len() - 1
	state := relation.NewInstance()
	for _, d := range m.Schema().In {
		state.Ensure(core.Past(d.Name), d.Arity)
	}
	for i := 0; i < last; i++ {
		for _, d := range m.Schema().In {
			if r := run.Inputs[i].Rel(d.Name); r != nil {
				state.Ensure(core.Past(d.Name), d.Arity).UnionWith(r)
			}
		}
	}
	ok, err := one.HoldsAt(run.Inputs[last], state, db)
	if err != nil {
		return err
	}
	if ok {
		return fmt.Errorf("counterexample does not violate clause %q at last transition", c)
	}
	return nil
}

// ErrorFreeContainResult is the outcome of a Theorem 4.6 check.
type ErrorFreeContainResult struct {
	// Contained reports whether every error-free run of the first machine
	// is an error-free run of the second.
	Contained bool
	// Counterexample is a run error-free for the first machine on which the
	// second raises error at the last step.
	Counterexample relation.Sequence
	Stats          Stats
}

// ErrorFreeContained decides, per Theorem 4.6, whether every error-free run
// of t1 is also error-free for t2. Both machines must share the same input
// schema and a full log, and neither may use negative state literals in
// error rules. A violation is witnessed by a run, error-free for t1
// throughout and for t2 up to its penultimate step, whose last step fires a
// t2 error rule; runs of length (state literals of that rule)+1 suffice.
func ErrorFreeContained(t1, t2 *core.Machine, db relation.Instance, opts *Options) (*ErrorFreeContainResult, error) {
	opts = opts.orDefault()
	ctx, cancel := opts.begin()
	defer cancel()
	for _, m := range []*core.Machine{t1, t2} {
		if err := requireSpocus(m); err != nil {
			return nil, err
		}
		if err := checkNoNegativeStateLiterals(m); err != nil {
			return nil, err
		}
	}
	if err := sameInputSchema(t1, t2); err != nil {
		return nil, err
	}
	// One unit per (t2 error rule, run length) pair, fanned across workers.
	// As in CheckErrorFree, every run length up to the bound is searched;
	// shorter witnesses cannot in general be padded.
	var units []unit[*ErrorFreeContainResult]
	for _, r := range t2.ErrorRules() {
		r := r
		maxN := positiveStateLiterals(r.Body, t2.Schema()) + 1
		for n := 1; n <= maxN; n++ {
			n := n
			units = append(units, unit[*ErrorFreeContainResult]{run: func(ctx context.Context) (*ErrorFreeContainResult, bool, error) {
				return errorFreeContainAt(ctx, t1, t2, db, r, n, opts)
			}})
		}
	}
	found, ok, err := searchFirst(ctx, opts.workers(), units)
	if err != nil {
		return nil, err
	}
	if ok {
		return found, nil
	}
	return &ErrorFreeContainResult{Contained: true}, nil
}

// errorFreeContainAt searches for a length-n run, error-free for t1
// throughout and for t2 up to step n-1, whose step n fires the given t2
// error rule; on success it returns the populated counterexample result.
func errorFreeContainAt(ctx context.Context, t1, t2 *core.Machine, db relation.Instance, r dlog.Rule, n int, opts *Options) (*ErrorFreeContainResult, bool, error) {
	tr1 := newTranslator(t1, "")
	tr2 := newTranslator(t2, "")
	var conj []fol.Formula
	for j := 1; j <= n; j++ {
		f, err := tr1.noErrorAt(j)
		if err != nil {
			return nil, false, err
		}
		conj = append(conj, f)
	}
	for j := 1; j < n; j++ {
		f, err := tr2.noErrorAt(j)
		if err != nil {
			return nil, false, err
		}
		conj = append(conj, f)
	}
	// Rule r fires at step n.
	bf, err := tr2.body(r.Body, n)
	if err != nil {
		return nil, false, err
	}
	conj = append(conj, fol.ExistsF(r.Vars(), bf))

	fixed := map[string]*relation.Rel{}
	free := map[string]int{}
	tr1.freePreds(n, free) // same input schema: shared replicas
	if opts.UnknownDB {
		dbPreds(t1, nil, fixed, free)
		dbPreds(t2, nil, fixed, free)
	} else {
		dbPreds(t1, db, fixed, free)
		dbPreds(t2, db, fixed, free)
	}
	res, err := solveSub(ctx, opts, &fol.Problem{
		Formula:     fol.AndF(conj...),
		Fixed:       fixed,
		Free:        free,
		ExtraConsts: append(t1.Constants(), t2.Constants()...),
		Tag:         t1.Fingerprint() + "+" + t2.Fingerprint(),
	})
	if err != nil {
		return nil, false, err
	}
	if res.Status == sat.Unsat {
		return nil, false, nil
	}
	out := &ErrorFreeContainResult{Stats: statsOf(res)}
	out.Counterexample = tr1.extractInputs(res.Model, n)
	if !opts.SkipReplay && !opts.UnknownDB {
		if err := replayErrorFreeContainment(t1, t2, db, out.Counterexample); err != nil {
			return nil, false, fmt.Errorf("verify: internal error: %w", err)
		}
		out.Counterexample = shrinkInputs(out.Counterexample, func(cand relation.Sequence) bool {
			return len(cand) > 0 && replayErrorFreeContainment(t1, t2, db, cand) == nil
		})
	}
	return out, true, nil
}

func sameInputSchema(t1, t2 *core.Machine) error {
	s1, s2 := t1.Schema().In, t2.Schema().In
	if len(s1) != len(s2) {
		return fmt.Errorf("verify: input schemas differ (%s vs %s)", s1, s2)
	}
	for _, d := range s1 {
		if a, ok := s2.Arity(d.Name); !ok || a != d.Arity {
			return fmt.Errorf("verify: input schemas differ on %s", d.Name)
		}
	}
	return nil
}

// replayErrorFreeContainment checks the witness: error-free for t1, not for
// t2.
func replayErrorFreeContainment(t1, t2 *core.Machine, db relation.Instance, seq relation.Sequence) error {
	r1, err := t1.Execute(db, seq)
	if err != nil {
		return err
	}
	if !r1.Valid(core.ErrorFree) {
		return fmt.Errorf("witness run is not error-free for %s", t1.Name())
	}
	r2, err := t2.Execute(db, seq)
	if err != nil {
		return err
	}
	if r2.Valid(core.ErrorFree) {
		return fmt.Errorf("witness run is error-free for %s too", t2.Name())
	}
	return nil
}
