package verify

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/fol"
	"repro/internal/relation"
	"repro/internal/sat"
)

// Goal is a sentence ∃x̄ (A₁ ∧ … ∧ Aₖ) where each Aᵢ is a positive or
// negative literal over an output relation, or an inequality (Section 3.2).
type Goal struct {
	Lits []dlog.Literal
}

// ParseGoal parses a goal from a comma-separated literal list, e.g.
// "deliver(X), NOT rejectpay(X)". All variables are implicitly
// existentially quantified.
func ParseGoal(src string) (*Goal, error) {
	r, err := dlog.ParseRule("goal :- " + src)
	if err != nil {
		return nil, err
	}
	return &Goal{Lits: r.Body}, nil
}

// Vars returns the goal's variables in order of first occurrence.
func (g *Goal) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range g.Lits {
		for _, v := range l.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

func (g *Goal) String() string {
	parts := make([]string, len(g.Lits))
	for i, l := range g.Lits {
		parts[i] = l.String()
	}
	return strings.Join(parts, ", ")
}

// validate checks the goal uses only output relations (and inequalities).
func (g *Goal) validate(s *core.Schema) error {
	for _, l := range g.Lits {
		switch l.Kind {
		case dlog.LitPos, dlog.LitNeg:
			if !s.Out.Has(l.Atom.Pred) {
				return fmt.Errorf("verify: goal literal %s is not over an output relation", l)
			}
			if a, _ := s.Out.Arity(l.Atom.Pred); a != len(l.Atom.Args) {
				return fmt.Errorf("verify: goal literal %s has wrong arity (schema says %d)", l, a)
			}
		}
	}
	return nil
}

// Holds evaluates the goal against a concrete output instance.
func (g *Goal) Holds(output relation.Instance) bool {
	found := false
	err := dlog.EvalRuleBindings(g.Lits, dlog.MultiDB{output}, func(dlog.Binding) bool {
		found = true
		return false
	})
	if err != nil {
		// Goals with unbound negative-only variables cannot occur after
		// validate + safety of use; treat as not holding.
		return false
	}
	return found
}

// ReachResult is the outcome of a goal-reachability check.
type ReachResult struct {
	// Reachable reports whether some run's last output satisfies the goal.
	Reachable bool
	// Witness is an input sequence whose run achieves the goal (length 2,
	// per the proof of Theorem 3.2; the first step may be empty).
	Witness relation.Sequence
	// WitnessDB is the found database under Options.UnknownDB.
	WitnessDB relation.Instance
	Stats     Stats
}

// ReachGoal decides, per Theorem 3.2, whether some run of the Spocus
// transducer m on database db reaches the goal in its last output. Runs of
// length two suffice because Spocus outputs depend only on the cumulated
// past inputs and the current input.
func ReachGoal(m *core.Machine, db relation.Instance, g *Goal, opts *Options) (*ReachResult, error) {
	return reachGoal(m, db, nil, g, opts)
}

// ReachGoalFrom decides whether the goal is reachable by some continuation
// of the given partial run (the "progress" variation of Section 2.1): the
// seed inputs are those already consumed.
func ReachGoalFrom(m *core.Machine, db relation.Instance, prefix relation.Sequence, g *Goal, opts *Options) (*ReachResult, error) {
	return reachGoal(m, db, prefix, g, opts)
}

func reachGoal(m *core.Machine, db relation.Instance, prefix relation.Sequence, g *Goal, opts *Options) (*ReachResult, error) {
	opts = opts.orDefault()
	ctx, cancel := opts.begin()
	defer cancel()
	if err := requireSpocus(m); err != nil {
		return nil, err
	}
	s := m.Schema()
	if err := g.validate(s); err != nil {
		return nil, err
	}
	t := newTranslator(m, "")
	fixed := map[string]*relation.Rel{}
	free := map[string]int{}
	if len(prefix) > 0 {
		seed := cumulateInputs(m, prefix)
		t.seedPred = map[string]string{}
		for _, d := range s.In {
			p := stepPred("", d.Name, 0)
			t.seedPred[d.Name] = p
			r := seed.Rel(d.Name)
			if r == nil {
				r = relation.NewRel(d.Arity)
			}
			fixed[p] = r
		}
	}
	var lits []fol.Formula
	for _, l := range g.Lits {
		f, err := goalLiteral(t, l, 2)
		if err != nil {
			return nil, err
		}
		lits = append(lits, f)
	}
	sentence := fol.ExistsF(g.Vars(), fol.AndF(lits...))
	t.freePreds(2, free)
	if opts.UnknownDB {
		dbPreds(m, nil, fixed, free)
	} else {
		dbPreds(m, db, fixed, free)
	}
	res, err := solveSub(ctx, opts, &fol.Problem{
		Formula:     sentence,
		Fixed:       fixed,
		Free:        free,
		ExtraConsts: append(m.Constants(), prefixConsts(prefix)...),
		Tag:         m.Fingerprint(),
	})
	if err != nil {
		return nil, err
	}
	out := &ReachResult{Stats: statsOf(res)}
	if res.Status == sat.Unsat {
		return out, nil
	}
	out.Reachable = true
	out.Witness = t.extractInputs(res.Model, 2)
	replayDB := db
	if opts.UnknownDB {
		out.WitnessDB = relation.NewInstance()
		for _, d := range s.DB {
			if r, ok := res.Model[d.Name]; ok {
				out.WitnessDB[d.Name] = r.Clone()
			}
		}
		replayDB = out.WitnessDB
	}
	if !opts.SkipReplay {
		achieves := func(cand relation.Sequence) bool {
			if len(cand) == 0 {
				return false
			}
			run, err := m.Execute(replayDB, append(prefix.Clone(), cand...))
			return err == nil && g.Holds(run.LastOutput())
		}
		if !achieves(out.Witness) {
			return nil, fmt.Errorf("verify: internal error: goal %s not satisfied by witness run", g)
		}
		out.Witness = shrinkInputs(out.Witness, achieves)
	}
	return out, nil
}

// goalLiteral translates a goal literal at step j: output atoms become
// their defining formulas.
func goalLiteral(t *translator, l dlog.Literal, j int) (fol.Formula, error) {
	switch l.Kind {
	case dlog.LitNeq:
		return fol.Neq(l.Left, l.Right), nil
	case dlog.LitEq:
		return fol.Eq(l.Left, l.Right), nil
	}
	f, err := t.outputAtom(l.Atom.Pred, l.Atom.Args, j)
	if err != nil {
		return nil, err
	}
	if l.Kind == dlog.LitNeg {
		return fol.NotF(f), nil
	}
	return f, nil
}

// cumulateInputs unions the inputs of a sequence per relation.
func cumulateInputs(m *core.Machine, seq relation.Sequence) relation.Instance {
	out := relation.NewInstance()
	for _, d := range m.Schema().In {
		out.Ensure(d.Name, d.Arity)
	}
	for _, in := range seq {
		out.UnionWith(in)
	}
	return out
}

func prefixConsts(seq relation.Sequence) []relation.Const {
	return seq.ActiveDomain()
}

// Progress suggests next inputs that make the goal immediately satisfied:
// for each candidate single-fact input over the given constant pool, it
// checks whether issuing that input now satisfies the goal in the resulting
// output (the "progress" service of Section 2.1). Facts are returned in
// deterministic order.
func Progress(m *core.Machine, db relation.Instance, prefix relation.Sequence, g *Goal, pool []relation.Const) ([]relation.Fact, error) {
	if err := g.validate(m.Schema()); err != nil {
		return nil, err
	}
	var out []relation.Fact
	for _, d := range m.Schema().In {
		for _, tup := range enumerateTuples(pool, d.Arity) {
			in := relation.NewInstance()
			in.Add(d.Name, tup)
			seq := append(prefix.Clone(), in)
			run, err := m.Execute(db, seq)
			if err != nil {
				return nil, err
			}
			if g.Holds(run.LastOutput()) {
				out = append(out, relation.Fact{Rel: d.Name, Args: tup})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out, nil
}

// Condition is one conjunct of a T_past-input sentence (Theorem 3.3): the
// universally closed implication  ∀x̄ (⋀If → ⋁Then)  whose literals range
// over output, database, and state relations. Arbitrary Boolean
// combinations are expressible as lists of Conditions (their CNF).
type Condition struct {
	If   []dlog.Literal
	Then []dlog.Literal
}

// ParseCondition parses "lit, lit => lit, lit" where the left side is a
// conjunction and the right side a disjunction; either side may be empty
// ("=> lit" asserts the disjunction unconditionally).
func ParseCondition(src string) (*Condition, error) {
	parts := strings.SplitN(src, "=>", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("verify: condition %q must contain '=>'", src)
	}
	c := &Condition{}
	if strings.TrimSpace(parts[0]) != "" {
		r, err := dlog.ParseRule("x :- " + parts[0])
		if err != nil {
			return nil, err
		}
		c.If = r.Body
	}
	if strings.TrimSpace(parts[1]) != "" {
		r, err := dlog.ParseRule("x :- " + parts[1])
		if err != nil {
			return nil, err
		}
		c.Then = r.Body
	}
	return c, nil
}

func (c *Condition) String() string {
	lhs := make([]string, len(c.If))
	for i, l := range c.If {
		lhs[i] = l.String()
	}
	rhs := make([]string, len(c.Then))
	for i, l := range c.Then {
		rhs[i] = l.String()
	}
	return strings.Join(lhs, ", ") + " => " + strings.Join(rhs, ", ")
}

// Vars returns all variables of the condition.
func (c *Condition) Vars() []string {
	seen := map[string]bool{}
	var out []string
	for _, ls := range [][]dlog.Literal{c.If, c.Then} {
		for _, l := range ls {
			for _, v := range l.Vars() {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// validate enforces range restriction: every variable of the condition must
// occur in a positive literal of the If side, so that counterexamples can be
// replayed operationally.
func (c *Condition) validate() error {
	pos := map[string]bool{}
	for _, l := range c.If {
		if l.Kind == dlog.LitPos {
			for _, v := range l.Vars() {
				pos[v] = true
			}
		}
	}
	for _, v := range c.Vars() {
		if !pos[v] {
			return fmt.Errorf("verify: condition %q: variable %s does not occur in a positive If literal", c, v)
		}
	}
	return nil
}

// TemporalResult is the outcome of a Theorem 3.3 check.
type TemporalResult struct {
	// Holds reports whether every run satisfies the sentence at every step.
	Holds bool
	// Counterexample, when the property fails, is an input sequence whose
	// run violates the sentence at its last step.
	Counterexample relation.Sequence
	// CounterexampleDB is the database found under Options.UnknownDB.
	CounterexampleDB relation.Instance
	// Violated names the condition that fails.
	Violated *Condition
	Stats    Stats
}

// CheckTemporal decides, per Theorem 3.3, whether every run of m on db
// satisfies all the given T_past-input conditions at every step. Literals
// range over output, database, and state relations; a state atom past-R(ū)
// holds iff R(ū) was input at some earlier step.
//
// The per-condition subproblems are independent and run across
// Options.Parallelism workers; the first violation found wins and cancels
// the rest. The Holds verdict is independent of parallelism, but which
// condition is reported Violated (and its counterexample) may differ from
// the sequential run when several conditions fail.
func CheckTemporal(m *core.Machine, db relation.Instance, conds []*Condition, opts *Options) (*TemporalResult, error) {
	return CheckTemporalFrom(m, db, nil, conds, opts)
}

// CheckTemporalFrom is the live-monitoring variation of Theorem 3.3: it
// decides whether every continuation of the given partial run (one or more
// further inputs) satisfies all the conditions at each of its future steps.
// Because a Spocus transducer's future behavior depends on the past only
// through the set of cumulated inputs, the prefix enters the reduction as a
// step-0 seed of the past-R translations, and the two-step locality
// argument of Theorem 3.2 applies unchanged. A Holds verdict means the
// property can no longer be violated from this session's state; a reported
// Counterexample is a continuation (not including the prefix) that violates
// the named condition at its last step.
func CheckTemporalFrom(m *core.Machine, db relation.Instance, prefix relation.Sequence, conds []*Condition, opts *Options) (*TemporalResult, error) {
	opts = opts.orDefault()
	ctx, cancel := opts.begin()
	defer cancel()
	if err := requireSpocus(m); err != nil {
		return nil, err
	}
	for _, c := range conds {
		if err := c.validate(); err != nil {
			return nil, err
		}
	}
	units := make([]unit[*TemporalResult], len(conds))
	for i := range conds {
		c := conds[i]
		units[i] = unit[*TemporalResult]{run: func(ctx context.Context) (*TemporalResult, bool, error) {
			return checkOneCondition(ctx, m, db, prefix, c, opts)
		}}
	}
	found, ok, err := searchFirst(ctx, opts.workers(), units)
	if err != nil {
		return nil, err
	}
	if ok {
		return found, nil
	}
	return &TemporalResult{Holds: true}, nil
}

// checkOneCondition decides a single T_past-input condition; it returns the
// populated violation result when the condition fails on some run that
// continues the (possibly empty) prefix.
func checkOneCondition(ctx context.Context, m *core.Machine, db relation.Instance, prefix relation.Sequence, c *Condition, opts *Options) (*TemporalResult, bool, error) {
	s := m.Schema()
	t := newTranslator(m, "")
	fixed := map[string]*relation.Rel{}
	if len(prefix) > 0 {
		seed := cumulateInputs(m, prefix)
		t.seedPred = map[string]string{}
		for _, d := range s.In {
			p := stepPred("", d.Name, 0)
			t.seedPred[d.Name] = p
			r := seed.Rel(d.Name)
			if r == nil {
				r = relation.NewRel(d.Arity)
			}
			fixed[p] = r
		}
	}
	// Violation sentence: ∃x̄ (⋀If ∧ ⋀¬Then) at the last step of a
	// two-step run (Theorem 3.2's locality argument).
	var lits []fol.Formula
	add := func(l dlog.Literal, negate bool) error {
		f, err := temporalLiteral(t, s, l, 2)
		if err != nil {
			return err
		}
		if negate {
			f = fol.NotF(f)
		}
		lits = append(lits, f)
		return nil
	}
	for _, l := range c.If {
		if err := add(l, false); err != nil {
			return nil, false, err
		}
	}
	for _, l := range c.Then {
		if err := add(l, true); err != nil {
			return nil, false, err
		}
	}
	sentence := fol.ExistsF(c.Vars(), fol.AndF(lits...))
	free := map[string]int{}
	t.freePreds(2, free)
	if opts.UnknownDB {
		dbPreds(m, nil, fixed, free)
	} else {
		dbPreds(m, db, fixed, free)
	}
	res, err := solveSub(ctx, opts, &fol.Problem{
		Formula:     sentence,
		Fixed:       fixed,
		Free:        free,
		ExtraConsts: append(m.Constants(), prefixConsts(prefix)...),
		Tag:         m.Fingerprint(),
	})
	if err != nil {
		return nil, false, err
	}
	if res.Status == sat.Unsat {
		return nil, false, nil
	}
	total := &TemporalResult{Stats: statsOf(res)}
	total.Violated = c
	total.Counterexample = t.extractInputs(res.Model, 2)
	replayDB := db
	if opts.UnknownDB {
		total.CounterexampleDB = relation.NewInstance()
		for _, d := range s.DB {
			if r, ok := res.Model[d.Name]; ok {
				total.CounterexampleDB[d.Name] = r.Clone()
			}
		}
		replayDB = total.CounterexampleDB
	}
	if !opts.SkipReplay {
		// The counterexample is the continuation only; replay prepends the
		// prefix so the violation is checked on the actual resumed run.
		violates := func(cand relation.Sequence) bool {
			full := append(prefix.Clone(), cand...)
			return replayTemporalViolation(m, replayDB, full, c) == nil
		}
		if !violates(total.Counterexample) {
			return nil, false, fmt.Errorf("verify: internal error: counterexample does not violate %s on replay", c)
		}
		total.Counterexample = shrinkInputs(total.Counterexample, func(cand relation.Sequence) bool {
			return len(cand) > 0 && violates(cand)
		})
	}
	return total, true, nil
}

// temporalLiteral translates a T_past-input literal at step j (literals over
// out, db, and state).
func temporalLiteral(t *translator, s *core.Schema, l dlog.Literal, j int) (fol.Formula, error) {
	switch l.Kind {
	case dlog.LitNeq:
		return fol.Neq(l.Left, l.Right), nil
	case dlog.LitEq:
		return fol.Eq(l.Left, l.Right), nil
	}
	a := l.Atom
	var f fol.Formula
	var err error
	switch {
	case s.Out.Has(a.Pred):
		f, err = t.outputAtom(a.Pred, a.Args, j)
		if err != nil {
			return nil, err
		}
	case s.State.Has(a.Pred):
		base, ok := pastBase(a.Pred, s)
		if !ok {
			return nil, fmt.Errorf("verify: state relation %s is not past-R", a.Pred)
		}
		// T_past-input sentences read the post-transition state Sⱼ: "R(ū)
		// has been input sometime in the past" includes the current step.
		f = t.pastAtomInclusive(base, a.Args, j)
	case s.DB.Has(a.Pred):
		f = fol.AtomF(a.Pred, a.Args...)
	default:
		return nil, fmt.Errorf("verify: temporal literal %s must be over output, database, or state relations", l)
	}
	if l.Kind == dlog.LitNeg {
		return fol.NotF(f), nil
	}
	return f, nil
}

// replayTemporalViolation checks that the counterexample run really violates
// the condition at its last step.
func replayTemporalViolation(m *core.Machine, db relation.Instance, seq relation.Sequence, c *Condition) error {
	run, err := m.Execute(db, seq)
	if err != nil {
		return err
	}
	last := run.Len() - 1
	// The condition is evaluated over output ∪ db ∪ state at the last
	// stage, where state is the post-transition Sₗₐₛₜ (cumulated inputs of
	// steps ≤ last) — run.States already records post-transition states.
	view := dlog.MultiDB{run.Outputs[last], run.States[last], db}
	// Violated means: some binding satisfies If and falsifies every Then.
	body := append([]dlog.Literal{}, c.If...)
	for _, l := range c.Then {
		neg := l
		switch l.Kind {
		case dlog.LitPos:
			neg.Kind = dlog.LitNeg
		case dlog.LitNeg:
			neg.Kind = dlog.LitPos
		case dlog.LitNeq:
			neg.Kind = dlog.LitEq
		case dlog.LitEq:
			neg.Kind = dlog.LitNeq
		}
		body = append(body, neg)
	}
	violated := false
	if err := dlog.EvalRuleBindings(body, view, func(dlog.Binding) bool {
		violated = true
		return false
	}); err != nil {
		return err
	}
	if !violated {
		return fmt.Errorf("counterexample does not violate %s at last step", c)
	}
	return nil
}
