package verify

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/relation"
	"repro/internal/tsdi"
)

// parseSentence builds a one-clause T_sdi sentence for the tests.
func parseSentence(clause string) (*tsdi.Sentence, error) {
	return tsdi.Parse(clause)
}

// --- condition parsing ---

func TestParseConditionShapes(t *testing.T) {
	c, err := ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.If) != 2 || len(c.Then) != 1 {
		t.Fatalf("condition shape %d=>%d, want 2=>1", len(c.If), len(c.Then))
	}

	// Empty If: the disjunction is asserted unconditionally.
	c, err = ParseCondition("=> deliver(time)")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.If) != 0 || len(c.Then) != 1 {
		t.Fatalf("empty-If condition parsed as %d=>%d", len(c.If), len(c.Then))
	}

	// Empty Then: the If conjunction may never hold.
	c, err = ParseCondition("deliver(time) =>")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.If) != 1 || len(c.Then) != 0 {
		t.Fatalf("empty-Then condition parsed as %d=>%d", len(c.If), len(c.Then))
	}
}

func TestParseConditionErrors(t *testing.T) {
	for _, src := range []string{
		"no arrow",
		"deliver(X => past-pay(X,Y)",  // unbalanced paren
		"deliver(X)) => past-pay(X)",  // trailing garbage
		"X => deliver(X)",             // bare variable is not a literal
		"'quoted' => deliver(X)",      // quoted constant is not a literal
		"deliver(X) => NOT, sendbill", // malformed negation
	} {
		if _, err := ParseCondition(src); err == nil {
			t.Errorf("ParseCondition(%q) accepted", src)
		}
	}
}

func TestConditionStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"deliver(X), price(X,Y) => past-pay(X,Y)",
		"sendbill(X,Y), NOT past-pay(X,Y) => price(X,Y)",
		"deliver(X), deliver(Y) => X = Y",
	} {
		c, err := ParseCondition(src)
		if err != nil {
			t.Fatalf("ParseCondition(%q): %v", src, err)
		}
		c2, err := ParseCondition(c.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", c.String(), err)
		}
		if c2.String() != c.String() {
			t.Errorf("round trip changed %q to %q", c.String(), c2.String())
		}
	}
}

func TestConditionRangeRestriction(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	// A variable occurring only in a NEGATED If literal is not range
	// restricted: counterexamples could not be replayed.
	c, err := ParseCondition("deliver(X), NOT sendbill(X,Y) => price(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckTemporal(m, db, []*Condition{c}, nil); err == nil {
		t.Error("variable bound only by a negated If literal accepted")
	}
	// The same variable in a positive If literal is fine.
	c, err = ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckTemporal(m, db, []*Condition{c}, nil); err != nil {
		t.Errorf("range-restricted condition rejected: %v", err)
	}
}

func TestCheckTemporalUnknownRelation(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	c, err := ParseCondition("teleport(X) => past-pay(X,X)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckTemporal(m, db, []*Condition{c}, nil); err == nil {
		t.Error("condition over unknown relation accepted")
	}
}

// --- evaluation edge cases ---

func TestCheckTemporalEmptyConditionList(t *testing.T) {
	res, err := CheckTemporal(models.Short(), models.MagazineDB(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("empty conjunction of conditions must hold vacuously")
	}
}

func TestLogValidityEmptyLog(t *testing.T) {
	res, err := LogValidity(models.Short(), models.MagazineDB(), relation.Sequence{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid || len(res.Witness) != 0 {
		t.Errorf("zero-length log must be valid with the empty witness, got Valid=%v |Witness|=%d", res.Valid, len(res.Witness))
	}
}

// TestTheorem33PostStateReading pins reproduction finding 1 of DESIGN §3.2a:
// a T_past-input condition reads the POST-transition state, so the payment
// input of the very step that fires the delivery already counts as
// past-pay. Under the pre-state reading the paper's flagship "no delivery
// before payment" property would be violated by short itself.
func TestTheorem33PostStateReading(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()

	// Operational setup: in Fig. 1 the delivery fires in the same step as
	// the pay input — confirm that before relying on it.
	run, err := m.Execute(db, models.Fig1Inputs())
	if err != nil {
		t.Fatal(err)
	}
	payStep := -1
	for j := range run.Inputs {
		if r := run.Inputs[j].Rel("pay"); r != nil && r.Len() > 0 {
			payStep = j
		}
	}
	if payStep < 0 || run.Outputs[payStep].Rel("deliver") == nil || run.Outputs[payStep].Rel("deliver").Len() == 0 {
		t.Fatalf("fixture drift: delivery no longer fires in the pay step (step %d)", payStep)
	}

	c, err := ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckTemporal(m, db, []*Condition{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("post-state reading violated: counterexample %v", res.Counterexample)
	}
}

func TestCheckTemporalNegatedStateLiteral(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	// Negated state literal in the If side: a bill for an unpaid product
	// must carry the database price. Holds by sendbill's rule.
	c, err := ParseCondition("sendbill(X,Y), NOT past-pay(X,Y) => price(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckTemporal(m, db, []*Condition{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Errorf("condition with negated state literal failed: %v", res.Counterexample)
	}
	// And a violated one: short never checks past billing, so a first bill
	// can precede any payment — expect a counterexample (replay-verified
	// inside CheckTemporal).
	c, err = ParseCondition("sendbill(X,Y) => past-pay(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err = CheckTemporal(m, db, []*Condition{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("unpaid first bill cannot satisfy past-pay")
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("violation reported without a counterexample")
	}
}

// --- goal parsing ---

func TestParseGoalShapesAndErrors(t *testing.T) {
	g, err := ParseGoal("deliver(X), NOT rejectpay(X), X <> time")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Lits) != 3 {
		t.Fatalf("goal has %d literals, want 3", len(g.Lits))
	}
	if got := g.Vars(); len(got) != 1 || got[0] != "X" {
		t.Errorf("goal vars %v, want [X]", got)
	}
	for _, src := range []string{"", "deliver(X", "deliver(X),"} {
		if _, err := ParseGoal(src); err == nil {
			t.Errorf("ParseGoal(%q) accepted", src)
		}
	}
}

func TestGoalArityMismatchRejected(t *testing.T) {
	g, err := ParseGoal("deliver(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	_, err = ReachGoal(models.Short(), models.MagazineDB(), g, nil)
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Errorf("wrong-arity goal gave %v", err)
	}
}

// --- T_sdi sentence edges ---

func TestParseSentenceErrors(t *testing.T) {
	if _, err := parseSentence("no arrow at all"); err == nil {
		t.Error("clause without => accepted")
	}
	if _, err := parseSentence("pay(X,Y) => NOT price(X,Y)"); err == nil {
		t.Error("negated Then literal accepted (T_sdi clauses are positive)")
	}
}

func TestCheckErrorFreeUnknownRelationRejected(t *testing.T) {
	s, err := parseSentence("teleport(X) => price(X,X)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckErrorFree(models.Short(), models.MagazineDB(), s, nil); err == nil {
		t.Error("sentence over unknown relation accepted")
	}
}
