package verify

import "repro/internal/tsdi"

// parseSentence builds a one-clause T_sdi sentence for the tests.
func parseSentence(clause string) (*tsdi.Sentence, error) {
	return tsdi.Parse(clause)
}
