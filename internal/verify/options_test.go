package verify

import (
	"errors"
	"testing"

	"repro/internal/models"
	"repro/internal/relation"
)

func TestBudgetExhaustion(t *testing.T) {
	// A one-conflict budget cannot decide a nontrivial log validity
	// question; the procedure must surface ErrBudget rather than guess.
	m := models.Friendly()
	db := models.MagazineDB()
	run, err := m.Execute(db, models.Fig2Inputs())
	if err != nil {
		t.Fatal(err)
	}
	_, err = LogValidity(m, db, run.Logs, &Options{MaxConflicts: 1})
	if err != nil && !errors.Is(err, ErrBudget) {
		t.Fatalf("unexpected error: %v", err)
	}
	// With no budget the same question decides fine.
	res, err := LogValidity(m, db, run.Logs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("genuine friendly log rejected")
	}
}

func TestFriendlyLogValidityReconstructsPendingBills(t *testing.T) {
	// friendly's pending-bills input is unlogged; a log containing only the
	// final delivery forces the solver to reconstruct a consistent session.
	m := models.Friendly()
	db := models.MagazineDB()
	log := relation.Sequence{
		models.Step(models.F("sendbill", "time", "855")),
		models.Step(models.F("pay", "time", "855"), models.F("deliver", "time")),
	}
	res, err := LogValidity(m, db, log, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("valid friendly log rejected")
	}
	if !res.Witness[0].Has("order", relation.Tuple{"time"}) {
		t.Errorf("order not reconstructed: %v", res.Witness)
	}
}

func TestReachGoalUnknownDBReplaysAgainstWitnessDB(t *testing.T) {
	m := models.Short()
	g, _ := ParseGoal("deliver(exotic)")
	res, err := ReachGoal(m, nil, g, &Options{UnknownDB: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("unreachable with free database")
	}
	// The witness DB must price the exotic product and the witness inputs
	// must drive the delivery on that database.
	run, err := m.Execute(res.WitnessDB, res.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Holds(run.LastOutput()) {
		t.Errorf("witness does not deliver: %s", run.LastOutput())
	}
}

func TestCheckTemporalMultipleConditions(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	ok1, _ := ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	ok2, _ := ParseCondition("sendbill(X,Y) => price(X,Y)")
	bad, _ := ParseCondition("sendbill(X,Y) => past-pay(X,Y)")
	res, err := CheckTemporal(m, db, []*Condition{ok1, ok2, bad}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("violated conjunct missed")
	}
	if res.Violated == nil || res.Violated.String() != bad.String() {
		t.Errorf("wrong violated condition: %v", res.Violated)
	}
	res2, err := CheckTemporal(m, db, []*Condition{ok1, ok2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Holds {
		t.Errorf("true conjunction rejected: %v", res2.Counterexample)
	}
}

func TestConditionValidation(t *testing.T) {
	c, _ := ParseCondition("deliver(X) => past-pay(X,Y)")
	if _, err := CheckTemporal(models.Short(), models.MagazineDB(), []*Condition{c}, nil); err == nil {
		t.Fatal("unbound Then variable accepted")
	}
	if _, err := ParseCondition("no arrow"); err == nil {
		t.Fatal("missing => accepted")
	}
}

func TestGoalWithConstantsOnlyAndInequality(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	// Two different deliveries in the same final step.
	g, err := ParseGoal("deliver(X), deliver(Y), X <> Y")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReachGoal(m, db, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reachable {
		t.Fatal("double delivery unreachable")
	}
	run, err := m.Execute(db, res.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if run.LastOutput().Rel("deliver").Len() < 2 {
		t.Errorf("witness delivers %s", run.LastOutput())
	}
}

func TestGoalRejectsNonOutputRelations(t *testing.T) {
	g, _ := ParseGoal("order(X)")
	if _, err := ReachGoal(models.Short(), models.MagazineDB(), g, nil); err == nil {
		t.Fatal("goal over input relation accepted")
	}
}
