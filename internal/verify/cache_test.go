package verify

import (
	"testing"

	"repro/internal/dlog"
	"repro/internal/fol"
	"repro/internal/models"
	"repro/internal/relation"
)

// TestCacheKeyScopedByTag pins the fingerprint scoping of the memo cache:
// grounding problems erase the machine into bare structure, so two machines
// whose translations happen to produce the same formula must still get
// distinct cache entries when one process-wide cache serves many models.
// The Tag (the machine fingerprint) is what keeps them apart.
func TestCacheKeyScopedByTag(t *testing.T) {
	mk := func(tag string) *fol.Problem {
		return &fol.Problem{
			Tag:     tag,
			Formula: fol.Atom{Pred: "deliver", Args: []dlog.Term{{Name: "x", Var: true}}},
			Free:    map[string]int{"deliver": 1},
		}
	}
	a, b := problemKey(mk("machine-a")), problemKey(mk("machine-b"))
	if a == b {
		t.Fatal("identical formulas under different tags share a cache key")
	}
	if a != problemKey(mk("machine-a")) {
		t.Fatal("cache key is not deterministic")
	}
}

// TestCacheSharedAcrossModels runs two different models through one shared
// cache and checks neither answer contaminates the other — the end-to-end
// face of the tag scoping.
func TestCacheSharedAcrossModels(t *testing.T) {
	cache := NewCache()
	db := models.MagazineDB().Clone()
	db.Add("blocked", relation.Tuple{"time"})
	g, err := ParseGoal("deliver(time)")
	if err != nil {
		t.Fatal(err)
	}
	// Same database, same goal, no prefix: SHORT delivers a blocked product
	// happily (it has no blocked rule), RESTRICTED never can.
	for run := 0; run < 2; run++ { // second pass answers from the cache
		short, err := ReachGoal(models.Short(), db, g, &Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		restricted, err := ReachGoal(models.Restricted(), db, g, &Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !short.Reachable {
			t.Fatalf("run %d: SHORT cannot deliver", run)
		}
		if restricted.Reachable {
			t.Fatalf("run %d: RESTRICTED delivers a blocked product", run)
		}
	}
	if hits, _ := cache.Stats(); hits == 0 {
		t.Fatal("second pass never hit the shared cache")
	}
}

// TestCheckTemporalFromPrefix pins the live-monitoring reading of Theorem
// 3.3: a property violable from the empty session can become permanently
// safe once the prefix forecloses the violating continuations.
func TestCheckTemporalFromPrefix(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	never, err := ParseCondition("deliver(time) =>") // "time is never delivered"
	if err != nil {
		t.Fatal(err)
	}

	res, err := CheckTemporalFrom(m, db, nil, []*Condition{never}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("fresh session: delivering time should still be possible")
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("violation without a counterexample continuation")
	}

	// Once time is paid for, SHORT can never deliver it (delivery requires
	// ¬past-pay), so the property now holds of every continuation.
	paid := relation.Sequence{
		models.Step(models.F("order", "time")),
		models.Step(models.F("pay", "time", "855")),
	}
	res, err = CheckTemporalFrom(m, db, paid, []*Condition{never}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("after payment the delivery is foreclosed; got violation %v", res.Counterexample)
	}
}
