package verify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/relation"
)

// --- pool semantics ---

func TestSearchFirstSequentialStopsAtFirstFound(t *testing.T) {
	var ran []int
	units := make([]unit[int], 4)
	for i := range units {
		i := i
		units[i].run = func(context.Context) (int, bool, error) {
			ran = append(ran, i)
			return i, i == 1, nil
		}
	}
	v, found, err := searchFirst(context.Background(), 1, units)
	if err != nil || !found || v != 1 {
		t.Fatalf("got (%v, %v, %v), want (1, true, nil)", v, found, err)
	}
	if len(ran) != 2 || ran[0] != 0 || ran[1] != 1 {
		t.Errorf("sequential run order %v, want [0 1] (stop at first found)", ran)
	}
}

func TestSearchFirstAgreesAcrossWorkerCounts(t *testing.T) {
	const n, hit = 20, 13
	for _, workers := range []int{1, 2, 4, 8, 32} {
		units := make([]unit[int], n)
		for i := range units {
			i := i
			units[i].run = func(context.Context) (int, bool, error) {
				return i, i == hit, nil
			}
		}
		v, found, err := searchFirst(context.Background(), workers, units)
		if err != nil || !found || v != hit {
			t.Errorf("workers=%d: got (%v, %v, %v), want (%d, true, nil)", workers, v, found, err, hit)
		}
	}
}

func TestSearchFirstAllNegative(t *testing.T) {
	for _, workers := range []int{1, 4} {
		units := make([]unit[int], 9)
		for i := range units {
			units[i].run = func(context.Context) (int, bool, error) { return 0, false, nil }
		}
		_, found, err := searchFirst(context.Background(), workers, units)
		if err != nil || found {
			t.Errorf("workers=%d: got (found=%v, err=%v), want conclusive negative", workers, found, err)
		}
	}
}

func TestSearchFirstWitnessWinsOverSiblingError(t *testing.T) {
	units := make([]unit[string], 6)
	for i := range units {
		i := i
		units[i].run = func(context.Context) (string, bool, error) {
			if i == 0 {
				return "", false, errors.New("boom")
			}
			return "witness", i == 5, nil
		}
	}
	v, found, err := searchFirst(context.Background(), 4, units)
	if err != nil || !found || v != "witness" {
		t.Fatalf("got (%q, %v, %v); a found witness must win over a sibling error", v, found, err)
	}
}

func TestSearchFirstReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		units := make([]unit[int], 8)
		for i := range units {
			i := i
			units[i].run = func(context.Context) (int, bool, error) {
				if i == 2 || i == 6 {
					return 0, false, fmt.Errorf("err-%d", i)
				}
				return 0, false, nil
			}
		}
		_, _, err := searchFirst(context.Background(), workers, units)
		if err == nil || err.Error() != "err-2" {
			// Sequential stops at the first error it meets, which is also
			// the lowest-indexed one.
			t.Errorf("workers=%d: got error %v, want err-2", workers, err)
		}
	}
}

func TestSearchFirstParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	units := make([]unit[int], 16)
	for i := range units {
		units[i].run = func(ctx context.Context) (int, bool, error) {
			started.Add(1)
			<-ctx.Done()
			return 0, false, nil
		}
	}
	go func() {
		for started.Load() < 2 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, found, err := searchFirst(ctx, 2, units)
	if found || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (found=%v, err=%v), want context.Canceled: a cancelled run may not claim a negative verdict", found, err)
	}
}

func TestForEachPositionalResults(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := forEach(context.Background(), workers, 17, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	_, err := forEach(context.Background(), 4, 10, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, errors.New("unit failed")
		}
		return i, nil
	})
	if err == nil || err.Error() != "unit failed" {
		t.Fatalf("got %v, want the unit's error", err)
	}
}

// --- cancellation and deadlines through the procedures ---

func TestTimeoutSurfacesDeadlineExceeded(t *testing.T) {
	m := models.Friendly()
	db := models.MagazineDB()
	run, err := m.Execute(db, models.Fig2Inputs())
	if err != nil {
		t.Fatal(err)
	}
	_, err = LogValidity(m, db, run.Logs, &Options{Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestCancelledContextSurfaces(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := models.Short()
	db := models.MagazineDB()
	_, err := CheckTemporal(m, db, []*Condition{mustCond(t, "sendbill(X,Y) => price(X,Y)")}, &Options{Context: ctx, Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func mustCond(t *testing.T, src string) *Condition {
	t.Helper()
	c, err := ParseCondition(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// --- memo cache ---

func TestCacheMemoizesAcrossCalls(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	sentence, err := parseSentence("pay(X,Y) => price(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	opts := &Options{Cache: cache, Parallelism: 2}
	first, err := CheckErrorFree(m, db, sentence, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfterFirst := cache.Stats()
	if cache.Len() == 0 {
		t.Fatal("no subproblems were memoized")
	}
	second, err := CheckErrorFree(m, db, sentence, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Holds != second.Holds {
		t.Fatalf("cached decision differs: %v vs %v", first.Holds, second.Holds)
	}
	hits, misses := cache.Stats()
	if hits == 0 {
		t.Error("second identical call produced no cache hits")
	}
	if misses != missesAfterFirst {
		t.Errorf("second identical call missed the cache %d times", misses-missesAfterFirst)
	}
}

// --- parallel/sequential answer equivalence ---

// TestParallelMatchesSequentialOnModels pins the documented determinism
// policy on the paper's transducers: decisions are identical under any
// parallelism, and when only one condition is violated the reported witness
// data must coincide too.
func TestParallelMatchesSequentialOnModels(t *testing.T) {
	m := models.Short()
	db := models.MagazineDB()
	ok1 := mustCond(t, "deliver(X), price(X,Y) => past-pay(X,Y)")
	ok2 := mustCond(t, "sendbill(X,Y) => price(X,Y)")
	bad := mustCond(t, "sendbill(X,Y) => past-pay(X,Y)")
	seq, err := CheckTemporal(m, db, []*Condition{ok1, ok2, bad}, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := CheckTemporal(m, db, []*Condition{ok1, ok2, bad}, &Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Holds != par.Holds {
		t.Fatalf("decision differs: sequential %v, parallel %v", seq.Holds, par.Holds)
	}
	if par.Violated == nil || par.Violated.String() != bad.String() {
		// Only one condition fails, so even the parallel run must name it.
		t.Errorf("parallel run blamed %v, want %v", par.Violated, bad)
	}

	seqRem, err := RemovableFromLog(models.Short(), db, "deliver", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	parRem, err := RemovableFromLog(models.Short(), db, "deliver", 3, &Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seqRem.Removable != parRem.Removable {
		t.Fatalf("RemovableFromLog decision differs: sequential %v, parallel %v", seqRem.Removable, parRem.Removable)
	}

	logSet := []string{"order", "pay", "sendbill", "deliver"}
	shortFL := models.WithLog(models.Short(), logSet...)
	payFirstFL := models.WithLog(models.PayFirst(), logSet...)
	seqCont, err := Contains(shortFL, payFirstFL, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	parCont, err := Contains(shortFL, payFirstFL, db, &Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seqCont.Contained != parCont.Contained {
		t.Fatalf("Contains decision differs: sequential %v, parallel %v", seqCont.Contained, parCont.Contained)
	}
}

// randomTransducerSrc builds a small random Spocus transducer from a safe
// template family: every generated program parses, is range-restricted, and
// has genuinely different behavior across the random body literals and log
// sets.
func randomTransducerSrc(r *rand.Rand) string {
	hitBody := []string{"put(X)"}
	if r.Intn(2) == 0 {
		hitBody = append(hitBody, "good(X)")
	}
	if r.Intn(2) == 0 {
		hitBody = append(hitBody, "NOT past-put(X)")
	}
	pairBody := []string{"tag(X,Y)"}
	if r.Intn(2) == 0 {
		pairBody = append(pairBody, "past-put(X)")
	}
	if r.Intn(2) == 0 {
		pairBody = append(pairBody, "X <> Y")
	}
	if r.Intn(2) == 0 {
		pairBody = append(pairBody, "good(Y)")
	}
	logPool := []string{"hit", "pairup", "put", "tag"}
	var logs []string
	for _, name := range logPool {
		if r.Intn(2) == 0 {
			logs = append(logs, name)
		}
	}
	if len(logs) == 0 {
		logs = []string{"hit"}
	}
	return `
transducer rnd
schema
  database: good/1;
  input: put/1, tag/2;
  state: past-put/1, past-tag/2;
  output: hit/1, pairup/2;
  log: ` + strings.Join(logs, ", ") + `;
state rules
  past-put(X) +:- put(X);
  past-tag(X,Y) +:- tag(X,Y);
output rules
  hit(X) :- ` + strings.Join(hitBody, ", ") + `;
  pairup(X,Y) :- ` + strings.Join(pairBody, ", ") + `;
`
}

func randomInputs(r *rand.Rand, pool []relation.Const) relation.Sequence {
	var seq relation.Sequence
	for j := 0; j < 1+r.Intn(2); j++ {
		in := relation.NewInstance()
		for k := 0; k < r.Intn(3); k++ {
			if r.Intn(2) == 0 {
				in.Add("put", relation.Tuple{pool[r.Intn(len(pool))]})
			} else {
				in.Add("tag", relation.Tuple{pool[r.Intn(len(pool))], pool[r.Intn(len(pool))]})
			}
		}
		seq = append(seq, in)
	}
	return seq
}

// perturbLog flips one random logged fact so roughly half the candidates are
// invalid logs — the comparison must agree on both answers.
func perturbLog(r *rand.Rand, m *core.Machine, log relation.Sequence, pool []relation.Const) relation.Sequence {
	out := log.Clone()
	if len(out) == 0 {
		return out
	}
	s := m.Schema()
	name := s.Log[r.Intn(len(s.Log))]
	arity, _ := s.Arity(name)
	tup := make(relation.Tuple, arity)
	for i := range tup {
		tup[i] = pool[r.Intn(len(pool))]
	}
	out[r.Intn(len(out))].Add(name, tup)
	return out
}

// TestPropParallelEquivalentToSequential is the answer-equivalence property:
// on random small Spocus transducers and random (genuine and perturbed)
// logs, the parallel engine and the sequential engine reach the same
// decisions, and every parallel witness replays. Witness identity is NOT
// required — see DESIGN.md §3.4.
func TestPropParallelEquivalentToSequential(t *testing.T) {
	pool := []relation.Const{"a", "b", "c"}
	conds := []string{
		"hit(X) => good(X)",
		"pairup(X,Y) => past-put(X)",
		"hit(X) => past-put(X)",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := core.ParseProgram(randomTransducerSrc(r))
		if err != nil {
			t.Logf("generated transducer does not parse: %v", err)
			return false
		}
		db := relation.NewInstance()
		db.Add("good", relation.Tuple{"a"})
		db.Add("good", relation.Tuple{"b"})

		// Candidate logs: one genuine, one perturbed.
		run, err := m.Execute(db, randomInputs(r, pool))
		if err != nil {
			t.Logf("execute: %v", err)
			return false
		}
		logs := []relation.Sequence{run.Logs, perturbLog(r, m, run.Logs, pool)}

		seqRes, err := LogValidityBatch(m, db, logs, &Options{})
		if err != nil {
			t.Logf("sequential batch: %v", err)
			return false
		}
		parRes, err := LogValidityBatch(m, db, logs, &Options{Parallelism: 4, Cache: NewCache()})
		if err != nil {
			t.Logf("parallel batch: %v", err)
			return false
		}
		for i := range logs {
			if seqRes[i].Valid != parRes[i].Valid {
				t.Logf("log %d: sequential Valid=%v, parallel Valid=%v\nmachine:\n%s", i, seqRes[i].Valid, parRes[i].Valid, randomTransducerSrc(rand.New(rand.NewSource(seed))))
				return false
			}
			if parRes[i].Valid {
				if err := replayLogCheck(m, db, parRes[i].Witness, logs[i]); err != nil {
					t.Logf("log %d: parallel witness fails replay: %v", i, err)
					return false
				}
			}
		}

		// Temporal conditions: decisions must agree; counterexamples are
		// replay-verified inside CheckTemporal itself.
		var cs []*Condition
		for _, src := range conds {
			c, err := ParseCondition(src)
			if err != nil {
				return false
			}
			cs = append(cs, c)
		}
		seqT, err := CheckTemporal(m, db, cs, nil)
		if err != nil {
			t.Logf("sequential temporal: %v", err)
			return false
		}
		parT, err := CheckTemporal(m, db, cs, &Options{Parallelism: 4})
		if err != nil {
			t.Logf("parallel temporal: %v", err)
			return false
		}
		if seqT.Holds != parT.Holds {
			t.Logf("temporal decision differs: sequential %v, parallel %v", seqT.Holds, parT.Holds)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
