package verify

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dlog"
	"repro/internal/fol"
	"repro/internal/relation"
	"repro/internal/sat"
)

// ContainResult is the outcome of a Theorem 3.5 containment check.
type ContainResult struct {
	// Contained reports whether every valid log of the candidate is a valid
	// log of the reference.
	Contained bool
	// Counterexample, when containment fails, is a two-step input sequence
	// over the candidate's inputs on which the logs differ at the last step.
	Counterexample relation.Sequence
	// DiffersAt names a logged relation whose values differ.
	DiffersAt string
	Stats     Stats
}

// Contains decides, per Theorem 3.5, whether reference ⊒ candidate: every
// valid log of the candidate transducer is also a valid log of the
// reference. Preconditions (from the theorem): the reference's inputs are a
// subset of the candidate's; both declare the same log relations; and every
// reference input is logged (so a log determines the reference's inputs).
// Under these conditions non-containment is witnessed by a two-step input
// sequence over the candidate's inputs whose candidate log differs from the
// reference log of its restriction — which this procedure searches for via
// an ∃*∀*FO sentence over two copies of the candidate's input schema.
func Contains(reference, candidate *core.Machine, db relation.Instance, opts *Options) (*ContainResult, error) {
	opts = opts.orDefault()
	if err := requireSpocus(reference); err != nil {
		return nil, err
	}
	if err := requireSpocus(candidate); err != nil {
		return nil, err
	}
	s1, s2 := reference.Schema(), candidate.Schema()
	for _, d := range s1.In {
		if a, ok := s2.In.Arity(d.Name); !ok || a != d.Arity {
			return nil, fmt.Errorf("verify: reference input %s/%d is not an input of the candidate (Theorem 3.5 requires in₁ ⊆ in₂)", d.Name, d.Arity)
		}
	}
	if !sameLogSet(s1.Log, s2.Log) {
		return nil, fmt.Errorf("verify: transducers must declare the same log relations (%v vs %v)", s1.Log, s2.Log)
	}
	for _, d := range s1.In {
		if !s1.Logged(d.Name) {
			return nil, fmt.Errorf("verify: reference input %s is not logged (Theorem 3.5 requires in₁ ⊆ log)", d.Name)
		}
	}

	ctx, cancel := opts.begin()
	defer cancel()

	t1 := newTranslator(reference, "")
	t2 := newTranslator(candidate, "")
	// Shared input replicas: in₁ relations use identical predicate names in
	// both translators, so the reference automatically reads the restriction
	// of the candidate's inputs.
	var diffs []fol.Formula
	for _, name := range s1.Log {
		arity := logArity(s1, s2, name)
		if arity < 0 {
			return nil, fmt.Errorf("verify: logged relation %s has inconsistent arity between the transducers", name)
		}
		v1, err := logValueAt(t1, s1, name, 2)
		if err != nil {
			return nil, err
		}
		v2, err := logValueAt(t2, s2, name, 2)
		if err != nil {
			return nil, err
		}
		vars := make([]string, arity)
		terms := make([]dlog.Term, arity)
		for i := range vars {
			vars[i] = fmt.Sprintf("D%s·%d", name, i)
			terms[i] = dlog.V(vars[i])
		}
		f1, err := v1(terms)
		if err != nil {
			return nil, err
		}
		f2, err := v2(terms)
		if err != nil {
			return nil, err
		}
		diffs = append(diffs,
			fol.ExistsF(vars, fol.AndF(f1, fol.NotF(f2))),
			fol.ExistsF(vars, fol.AndF(fol.NotF(f1), f2)),
		)
	}

	fixed := map[string]*relation.Rel{}
	free := map[string]int{}
	t2.freePreds(2, free) // covers in₂ ⊇ in₁
	if opts.UnknownDB {
		dbPreds(reference, nil, fixed, free)
		dbPreds(candidate, nil, fixed, free)
	} else {
		dbPreds(reference, db, fixed, free)
		dbPreds(candidate, db, fixed, free)
	}
	consts := append(reference.Constants(), candidate.Constants()...)
	tag := reference.Fingerprint() + "+" + candidate.Fingerprint()

	// Each diff disjunct is a closed ∃*∀*FO sentence, and the original
	// Or-sentence is satisfiable iff some disjunct is — so the disjuncts are
	// sound independent subproblems. Fan them out; the first satisfiable one
	// wins. Per-unit grounding stats are folded into the Contained verdict's
	// Stats (Vars/Clauses summed across units, DomainSize the maximum).
	subStats := make([]Stats, len(diffs))
	units := make([]unit[*ContainResult], len(diffs))
	for i, diff := range diffs {
		i, diff := i, diff
		units[i].run = func(ctx context.Context) (*ContainResult, bool, error) {
			res, err := solveSub(ctx, opts, &fol.Problem{
				Formula:     diff,
				Fixed:       fixed,
				Free:        free,
				ExtraConsts: consts,
				Tag:         tag,
			})
			if err != nil {
				return nil, false, err
			}
			subStats[i] = statsOf(res)
			if res.Status == sat.Unsat {
				return nil, false, nil
			}
			out := &ContainResult{Stats: statsOf(res)}
			out.Counterexample = t2.extractInputs(res.Model, 2)
			if !opts.SkipReplay && !opts.UnknownDB {
				name, err := replayContainmentDiff(reference, candidate, db, out.Counterexample)
				if err != nil {
					return nil, false, fmt.Errorf("verify: internal error: %w", err)
				}
				out.Counterexample = shrinkInputs(out.Counterexample, func(cand relation.Sequence) bool {
					if len(cand) != 2 {
						return false
					}
					_, err := replayContainmentDiff(reference, candidate, db, cand)
					return err == nil
				})
				name, err = replayContainmentDiff(reference, candidate, db, out.Counterexample)
				if err != nil {
					return nil, false, fmt.Errorf("verify: internal error after shrink: %w", err)
				}
				out.DiffersAt = name
			}
			return out, true, nil
		}
	}
	found, ok, err := searchFirst(ctx, opts.workers(), units)
	if err != nil {
		return nil, err
	}
	if ok {
		return found, nil
	}
	out := &ContainResult{Contained: true}
	for _, st := range subStats {
		out.Stats.Vars += st.Vars
		out.Stats.Clauses += st.Clauses
		if st.DomainSize > out.Stats.DomainSize {
			out.Stats.DomainSize = st.DomainSize
		}
	}
	return out, nil
}

// Equivalent decides log equivalence via two containment checks
// (Corollary 3.6: decidable for transducers over the same schema with full
// log; more generally whenever both directions meet Theorem 3.5's
// preconditions).
func Equivalent(t1, t2 *core.Machine, db relation.Instance, opts *Options) (bool, *ContainResult, *ContainResult, error) {
	opts = opts.orDefault()
	if opts.workers() > 1 {
		// The two containment directions are independent; run them
		// concurrently, each with its own internal fan-out sharing the same
		// worker budget. Both must complete (no early exit: callers inspect
		// both results), so errors are surfaced after joining.
		var r12, r21 *ContainResult
		var err12, err21 error
		done := make(chan struct{})
		go func() {
			defer close(done)
			r21, err21 = Contains(t2, t1, db, opts)
		}()
		r12, err12 = Contains(t1, t2, db, opts)
		<-done
		if err12 != nil {
			return false, nil, nil, err12
		}
		if err21 != nil {
			return false, r12, nil, err21
		}
		return r12.Contained && r21.Contained, r12, r21, nil
	}
	r12, err := Contains(t1, t2, db, opts)
	if err != nil {
		return false, nil, nil, err
	}
	r21, err := Contains(t2, t1, db, opts)
	if err != nil {
		return false, r12, nil, err
	}
	return r12.Contained && r21.Contained, r12, r21, nil
}

func sameLogSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if !set[n] {
			return false
		}
	}
	return true
}

func logArity(s1, s2 *core.Schema, name string) int {
	a1, ok1 := s1.Arity(name)
	a2, ok2 := s2.Arity(name)
	if !ok1 || !ok2 || a1 != a2 {
		return -1
	}
	return a1
}

// logValueAt returns the "tuple ∈ log value of name at step j" formula
// builder for one machine.
func logValueAt(t *translator, s *core.Schema, name string, j int) (func([]dlog.Term) (fol.Formula, error), error) {
	switch {
	case s.In.Has(name):
		return func(args []dlog.Term) (fol.Formula, error) {
			return t.inputAtom(name, args, j), nil
		}, nil
	case s.Out.Has(name):
		return func(args []dlog.Term) (fol.Formula, error) {
			return t.outputAtom(name, args, j)
		}, nil
	}
	return nil, fmt.Errorf("verify: logged relation %s is neither input nor output", name)
}

// replayContainmentDiff runs both machines on the counterexample (the
// candidate on the full inputs, the reference on their restriction) and
// returns the name of a logged relation on which the final logs differ.
func replayContainmentDiff(reference, candidate *core.Machine, db relation.Instance, inputs relation.Sequence) (string, error) {
	restricted := inputs.Restrict(reference.Schema().In.Names())
	runRef, err := reference.Execute(db, restricted)
	if err != nil {
		return "", err
	}
	runCand, err := candidate.Execute(db, inputs)
	if err != nil {
		return "", err
	}
	last := len(inputs) - 1
	for _, name := range reference.Schema().Log {
		a, _ := reference.Schema().Arity(name)
		r1 := relOrEmpty(runRef.Logs[last], name, a)
		r2 := relOrEmpty(runCand.Logs[last], name, a)
		if !r1.Equal(r2) {
			return name, nil
		}
	}
	return "", fmt.Errorf("counterexample logs do not differ at last step:\nref:  %s\ncand: %s", runRef.Logs[last], runCand.Logs[last])
}

func relOrEmpty(in relation.Instance, name string, arity int) *relation.Rel {
	if r := in.Rel(name); r != nil {
		return r
	}
	return relation.NewRel(arity)
}
