package spocus

// End-to-end tests of the public facade: the workflows a library user runs,
// expressed entirely through the root package.

import (
	"strings"
	"testing"
)

func TestFacadeQuickstartWorkflow(t *testing.T) {
	m, err := ParseProgram(ShortSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if m.Kind() != KindSpocus {
		t.Fatalf("kind = %v", m.Kind())
	}
	db := MagazineDB()
	run, err := m.Execute(db, Sequence{
		Step(F("order", "time")),
		Step(F("pay", "time", "855")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !run.Outputs[1].Has("deliver", Tuple{"time"}) {
		t.Errorf("no delivery: %s", run.Outputs[1])
	}
	if !strings.Contains(run.FormatTrace(false, true), "deliver(time)") {
		t.Error("trace missing delivery")
	}
}

func TestFacadeAuditWorkflow(t *testing.T) {
	m := Short()
	db := MagazineDB()
	run, err := m.Execute(db, Sequence{
		Step(F("order", "newsweek")),
		Step(F("pay", "newsweek", "845")),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := LogValidity(m, db, run.Logs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("honest log rejected")
	}
	// The shrunk witness must be exactly the minimal session.
	if len(res.Witness) != 2 || !res.Witness[0].Has("order", Tuple{"newsweek"}) {
		t.Errorf("witness not minimal: %v", res.Witness)
	}
	forged := Sequence{Step(F("deliver", "time"))}
	res2, err := LogValidity(m, db, forged, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Valid {
		t.Fatal("forged log accepted")
	}
}

func TestFacadeVerificationWorkflow(t *testing.T) {
	m := Short()
	db := MagazineDB()
	g, err := ParseGoal("deliver(X)")
	if err != nil {
		t.Fatal(err)
	}
	reach, err := ReachGoal(m, db, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reach.Reachable {
		t.Fatal("deliver unreachable")
	}
	c, err := ParseCondition("deliver(X), price(X,Y) => past-pay(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := CheckTemporal(m, db, []*Condition{c}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tmp.Holds {
		t.Fatal("payment property violated")
	}
	facts, err := Progress(m, db, Sequence{Step(F("order", "time"))}, mustGoal(t, "deliver(time)"), []Const{"time", "855"})
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 || facts[0].String() != "pay(time, 855)" {
		t.Errorf("Progress = %v", facts)
	}
}

func mustGoal(t *testing.T, src string) *Goal {
	t.Helper()
	g, err := ParseGoal(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeEnforceWorkflow(t *testing.T) {
	m := Friendly()
	s, err := ParseSentence("pay(X,Y) => price(X,Y)")
	if err != nil {
		t.Fatal(err)
	}
	enf, err := Enforce(m, s)
	if err != nil {
		t.Fatal(err)
	}
	db := MagazineDB()
	bad, err := enf.Execute(db, Sequence{Step(F("pay", "time", "999"))})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Valid(ErrorFree) {
		t.Error("wrong-price payment accepted")
	}
	res, err := CheckErrorFree(enf, db, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Error("enforced sentence not verified")
	}
}

func TestFacadeCustomizationWorkflow(t *testing.T) {
	logSet := []string{"order", "pay", "sendbill", "deliver"}
	short := WithLog(Short(), logSet...)
	friendly := WithLog(Friendly(), logSet...)
	db := MagazineDB()
	res, err := Contains(short, friendly, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained {
		t.Errorf("customization unsound: differs at %s", res.DiffersAt)
	}
	keep, err := MinimalLog(Short(), db, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 2 {
		t.Errorf("minimal log = %v", keep)
	}
	rem, err := RemovableFromLog(Short(), db, "deliver", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rem.Removable {
		t.Error("deliver should be removable")
	}
}
