package spocus

// The serving layer: a concurrent, durable runtime hosting many live
// transducer sessions — one per customer — behind an HTTP/JSON API. See
// internal/session for the engine and cmd/spocus-server for the binary.
// The cluster layer (internal/cluster, cmd/spocus-router) lifts the
// session shard boundary across processes: a consistent-hash router
// fronting N servers, with health-based failover and session handoff by
// WAL shipping (digest-verified state transfer) or deterministic replay.
// Durability itself — segmented group-commit WALs and streaming snapshots —
// lives in internal/storage, owned end-to-end by the session engine. The live verification plane (internal/live) answers
// reachability, temporal, and progress queries against running sessions'
// current prefixes, with memoized answers and admission control.

import (
	"net/http"

	"repro/internal/cluster"
	"repro/internal/compose"
	"repro/internal/live"
	"repro/internal/models"
	"repro/internal/session"
)

// Re-exported session-engine types.
type (
	// Engine hosts many concurrent transducer sessions, sharded by session
	// ID, with write-ahead logging and snapshots under Config.Dir.
	Engine = session.Engine
	// EngineConfig tunes an Engine (durability dir, shards, fsync policy,
	// snapshot cadence).
	EngineConfig = session.Config
	// OpenRequest describes a session to open: a named model or an inline
	// program, an optional database, and an acceptance mode.
	OpenRequest = session.OpenRequest
	// SessionInfo describes an open session.
	SessionInfo = session.Info
	// StepResult is one transition's outputs and log delta (Figure 1).
	StepResult = session.StepResult
	// LogResult is a session's full durable log.
	LogResult = session.LogResult
	// CloseResult is a closed session's final disposition.
	CloseResult = session.CloseResult
	// EngineStats is a point-in-time metrics snapshot.
	EngineStats = session.Stats
	// FsyncPolicy selects WAL durability (always, interval, never).
	FsyncPolicy = session.FsyncPolicy
	// NetworkSpec describes a transducer network (members and wires) for a
	// network session: set OpenRequest.Network to open one. Each POST /input
	// then advances every member one synchronous unit-delay step, atomically
	// and durably (one WAL record per joint step).
	NetworkSpec = compose.Spec
	// JointLogEntry is one step of a network session's durable joint log:
	// every member's log delta plus the consumed wire traffic.
	JointLogEntry = session.JointLogEntry
)

// WAL fsync policies.
const (
	// FsyncAlways makes every acknowledged step durable before replying.
	FsyncAlways = session.FsyncAlways
	// FsyncInterval flushes at most once per configured interval.
	FsyncInterval = session.FsyncInterval
	// FsyncNever leaves flushing to the operating system.
	FsyncNever = session.FsyncNever
)

// Re-exported cluster-layer types.
type (
	// Router fronts N engine servers with a consistent-hash ring, health
	// checking, and deterministic-replay session handoff.
	Router = cluster.Router
	// RouterConfig tunes a Router (backends, vnodes, health probing).
	RouterConfig = cluster.RouterConfig
	// HealthConfig tunes backend health probing (interval, timeout,
	// failure threshold, backoff cap).
	HealthConfig = cluster.HealthConfig
	// Ring is the consistent-hash ring mapping session IDs to backends.
	Ring = cluster.Ring
	// RingInfo is the ring snapshot served at GET /debug/shards.
	RingInfo = cluster.Info
	// SessionExport is a session's replayable input history, the unit of
	// replay-mode handoff between backends.
	SessionExport = session.Export
	// SessionImage is a session's full materialized state (database, state
	// relations, logs, cumulated inputs) as written to snapshots and shipped
	// between backends.
	SessionImage = session.Image
	// SessionStateExport is a frozen session's image plus a log digest, the
	// unit of WAL-shipping handoff; the installing backend refuses the image
	// if the digest does not match its restored logs.
	SessionStateExport = session.StateExport
)

// Re-exported live-verification-plane types.
type (
	// LiveService answers verification queries about running sessions from
	// their current prefixes: goal reachability, temporal checks, and
	// progress suggestions, with a shared memoized answer cache, a bounded
	// worker pool, per-query timeouts, and admission control.
	LiveService = live.Service
	// LiveConfig sizes a LiveService (workers, queue, per-query timeout,
	// solver budgets, answer-cache capacity).
	LiveConfig = live.Config
	// LiveSource is a stable session snapshot a LiveService answers from
	// (see Engine.Peek).
	LiveSource = live.Source
	// LiveStats is a point-in-time metrics snapshot of a LiveService.
	LiveStats = live.Stats
	// GoalAnswer, TemporalAnswer, and ProgressAnswer are the wire answers
	// of the three query kinds.
	GoalAnswer     = live.GoalAnswer
	TemporalAnswer = live.TemporalAnswer
	ProgressAnswer = live.ProgressAnswer
)

// NewEngine creates a session engine, replaying any WAL and snapshots
// under cfg.Dir before accepting requests.
func NewEngine(cfg EngineConfig) (*Engine, error) { return session.NewEngine(cfg) }

// ServerHandler serves the engine over HTTP/JSON (see internal/session's
// Handler for the endpoint list), with a default live verification
// service.
func ServerHandler(e *Engine) http.Handler { return session.Handler(e) }

// ServerHandlerWith is ServerHandler with an explicitly configured live
// verification service.
func ServerHandlerWith(e *Engine, lv *LiveService) http.Handler {
	return session.HandlerWith(e, lv)
}

// NewLiveService creates a live verification service; zero-value config
// fields get defaults.
func NewLiveService(cfg LiveConfig) *LiveService { return live.New(cfg) }

// NewRouter builds a cluster router over the configured backends and
// starts health checking; serve its Handler and Close it on shutdown.
func NewRouter(cfg RouterConfig) (*Router, error) { return cluster.NewRouter(cfg) }

// NewRing creates a standalone consistent-hash ring with the given
// virtual-node count per backend.
func NewRing(vnodes int) *Ring { return cluster.NewRing(vnodes) }

// ModelNames lists the named business models servable by an Engine.
func ModelNames() []string { return models.Names() }

// NetworkNames lists the generated transducer networks openable as
// network sessions by name on the HTTP surface (GET /networks).
func NetworkNames() []string { return models.NetworkNames() }

// GeneratedNetwork returns a fresh spec for a named generated network
// (marketplace, fraud, customization), or nil if the name is unknown.
func GeneratedNetwork(name string) *NetworkSpec { return models.Network(name) }
