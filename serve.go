package spocus

// The serving layer: a concurrent, durable runtime hosting many live
// transducer sessions — one per customer — behind an HTTP/JSON API. See
// internal/session for the engine and cmd/spocus-server for the binary.

import (
	"net/http"

	"repro/internal/models"
	"repro/internal/session"
)

// Re-exported session-engine types.
type (
	// Engine hosts many concurrent transducer sessions, sharded by session
	// ID, with write-ahead logging and snapshots under Config.Dir.
	Engine = session.Engine
	// EngineConfig tunes an Engine (durability dir, shards, fsync policy,
	// snapshot cadence).
	EngineConfig = session.Config
	// OpenRequest describes a session to open: a named model or an inline
	// program, an optional database, and an acceptance mode.
	OpenRequest = session.OpenRequest
	// SessionInfo describes an open session.
	SessionInfo = session.Info
	// StepResult is one transition's outputs and log delta (Figure 1).
	StepResult = session.StepResult
	// LogResult is a session's full durable log.
	LogResult = session.LogResult
	// CloseResult is a closed session's final disposition.
	CloseResult = session.CloseResult
	// EngineStats is a point-in-time metrics snapshot.
	EngineStats = session.Stats
	// FsyncPolicy selects WAL durability (always, interval, never).
	FsyncPolicy = session.FsyncPolicy
)

// WAL fsync policies.
const (
	// FsyncAlways makes every acknowledged step durable before replying.
	FsyncAlways = session.FsyncAlways
	// FsyncInterval flushes at most once per configured interval.
	FsyncInterval = session.FsyncInterval
	// FsyncNever leaves flushing to the operating system.
	FsyncNever = session.FsyncNever
)

// NewEngine creates a session engine, replaying any WAL and snapshots
// under cfg.Dir before accepting requests.
func NewEngine(cfg EngineConfig) (*Engine, error) { return session.NewEngine(cfg) }

// ServerHandler serves the engine over HTTP/JSON (see internal/session's
// Handler for the endpoint list).
func ServerHandler(e *Engine) http.Handler { return session.Handler(e) }

// ModelNames lists the named business models servable by an Engine.
func ModelNames() []string { return models.Names() }
